// Package arena provides the pluggable payload-byte backends the
// address-space substrate writes through. The reallocation algorithms
// above it are cost-oblivious: they decide *which* extents move and the
// substrate decides *what moving costs*. A backend makes that cost real
// — every relocation memmoves the object's bytes — or keeps it metered,
// counting the bytes a real backend would have touched without touching
// any.
//
// One cell of the simulated address space is one byte of the backend,
// so the paper's moved-volume meter and a backend's BytesMoved counter
// are directly comparable: on the same op stream a metered run and a
// heap run report identical BytesMoved, and the heap run additionally
// reports the nanoseconds the memmoves cost (CopyNanos). That is the
// measurement the E17 experiment builds its metered-cells vs
// measured-bytes/ns table from.
//
// Backends are not safe for concurrent use; the engine serializes all
// access (the facades' locks extend over payload reads and writes).
package arena

import (
	"errors"
	"fmt"
	"time"
)

// ErrClosed is the use-after-Close sentinel. Payload access on a
// closed backend panics with this value (Copy and Bytes sit on the
// relocation hot path and have no error returns — a closed arena there
// is a lifecycle bug, and a sentinel panic beats the opaque nil-index
// or SIGSEGV it would otherwise decay to); Sync, which is on an error
// path anyway, returns it.
var ErrClosed = errors.New("arena: use after Close")

// Kind names a backend implementation.
type Kind int

const (
	// Metered is the no-op backend: relocations only count the bytes
	// they would move. This is the default and preserves the behavior
	// the repo had before backends existed.
	Metered Kind = iota
	// Heap backs the address space with a growable Go byte slice;
	// relocations pay real memmoves.
	Heap
	// Mmap backs the address space with an anonymous memory mapping
	// (falling back to the heap on platforms without mmap).
	Mmap
	// File backs the address space with a named, file-backed mapping
	// that Sync flushes to media (msync + fsync). A File backend needs
	// a path: construct it with Create, Open, or FromFile, not New.
	File
)

func (k Kind) String() string {
	switch k {
	case Metered:
		return "metered"
	case Heap:
		return "heap"
	case Mmap:
		return "mmap"
	case File:
		return "file"
	default:
		return "unknown"
	}
}

// ParseKind resolves a backend name (as printed by Kind.String).
func ParseKind(s string) (Kind, error) {
	for _, k := range []Kind{Metered, Heap, Mmap} {
		if s == k.String() {
			return k, nil
		}
	}
	return 0, fmt.Errorf("unknown backend %q (valid: metered, heap, mmap)", s)
}

// Counters is a backend's cumulative cost accounting.
type Counters struct {
	// BytesMoved is the total payload volume relocations have copied
	// (or, for the metered backend, would have copied).
	BytesMoved int64
	// Copies is the number of relocations executed.
	Copies int64
	// CopyNanos is the wall-clock time spent inside memmoves, recorded
	// only while timing is armed (SetTiming) on a real backend.
	CopyNanos int64
}

// Backend is one payload store over the flat address space. dst/src/
// start are cell addresses; one cell is one byte.
//
// Growth never fails softly: a real backend that cannot obtain memory
// panics (address-space exhaustion is not recoverable for an arena),
// which keeps Copy and Bytes off the error paths of the relocation hot
// loops.
type Backend interface {
	// Kind reports the implementation.
	Kind() Kind
	// Real reports whether payload bytes physically exist. The metered
	// backend returns false; payload access is then unavailable.
	Real() bool
	// Ensure grows the store so addresses [0, n) are addressable.
	Ensure(n int64)
	// Copy relocates size bytes from src to dst with memmove semantics
	// (overlap between source and destination is fine), growing the
	// store as needed, and counts the move.
	Copy(dst, src, size int64)
	// Bytes returns the live byte slice for [start, start+size),
	// growing the store as needed. The slice aliases backend memory
	// and is invalidated by the next operation that can grow or
	// relocate the store. Nil for backends that are not Real.
	Bytes(start, size int64) []byte
	// Counters returns the cumulative cost accounting.
	Counters() Counters
	// SetTiming arms (or disarms) CopyNanos recording. Off by default:
	// an untimed Copy never reads a clock.
	SetTiming(on bool)
	// Sync flushes payload bytes to durable media: msync + fsync for
	// the file backend, a no-op nil for memory-only backends. After
	// Close it returns ErrClosed.
	Sync() error
	// Close releases backend resources. Close is idempotent; any other
	// use of a closed backend fails fast — payload access panics with
	// ErrClosed, Sync returns it.
	Close() error
}

// New builds a backend of the given kind.
func New(k Kind) (Backend, error) {
	switch k {
	case Metered:
		return &metered{}, nil
	case Heap:
		return &heap{}, nil
	case Mmap:
		return newMmap()
	case File:
		return nil, errors.New("arena: the file backend needs a path; use Create, Open, or FromFile")
	default:
		return nil, fmt.Errorf("arena: unknown kind %d", int(k))
	}
}

// metered counts what a real backend would do, and does nothing else.
type metered struct {
	c      Counters
	closed bool
}

func (m *metered) Kind() Kind { return Metered }
func (m *metered) Real() bool { return false }
func (m *metered) Ensure(int64) {
	if m.closed {
		panic(ErrClosed)
	}
}
func (m *metered) Copy(dst, src, size int64) {
	if m.closed {
		panic(ErrClosed)
	}
	m.c.BytesMoved += size
	m.c.Copies++
}
func (m *metered) Bytes(start, size int64) []byte {
	if m.closed {
		panic(ErrClosed)
	}
	return nil
}
func (m *metered) Counters() Counters { return m.c }
func (m *metered) SetTiming(bool)     {}
func (m *metered) Sync() error {
	if m.closed {
		return ErrClosed
	}
	return nil
}
func (m *metered) Close() error { m.closed = true; return nil }

// heap is the growable-slice backend.
type heap struct {
	mem    []byte
	timing bool
	closed bool
	c      Counters
}

func (h *heap) Kind() Kind { return Heap }
func (h *heap) Real() bool { return true }

func (h *heap) Ensure(n int64) {
	if h.closed {
		panic(ErrClosed)
	}
	if n <= int64(len(h.mem)) {
		return
	}
	// Grow geometrically so a sequence of one-past-the-end placements
	// costs amortized O(1) byte of copying per byte of growth.
	newLen := int64(len(h.mem)) * 2
	if newLen < n {
		newLen = n
	}
	grown := make([]byte, newLen)
	copy(grown, h.mem)
	h.mem = grown
}

func (h *heap) Copy(dst, src, size int64) {
	end := dst + size
	if se := src + size; se > end {
		end = se
	}
	h.Ensure(end)
	if h.timing {
		t0 := time.Now()
		copy(h.mem[dst:dst+size], h.mem[src:src+size])
		h.c.CopyNanos += int64(time.Since(t0))
	} else {
		copy(h.mem[dst:dst+size], h.mem[src:src+size])
	}
	h.c.BytesMoved += size
	h.c.Copies++
}

func (h *heap) Bytes(start, size int64) []byte {
	h.Ensure(start + size)
	return h.mem[start : start+size : start+size]
}

func (h *heap) Counters() Counters { return h.c }
func (h *heap) SetTiming(on bool)  { h.timing = on }
func (h *heap) Sync() error {
	if h.closed {
		return ErrClosed
	}
	return nil
}
func (h *heap) Close() error { h.mem = nil; h.closed = true; return nil }
