//go:build !unix

package arena

// Platforms without anonymous mmap get the heap backend behind the
// Mmap kind: same semantics, same counters, GC-visible memory. Kind()
// still reports Mmap so configuration round-trips.
func newMmap() (Backend, error) {
	return &mmapFallback{}, nil
}

type mmapFallback struct{ heap }

func (f *mmapFallback) Kind() Kind { return Mmap }
