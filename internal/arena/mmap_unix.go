//go:build unix

package arena

import (
	"fmt"
	"syscall"
	"time"
)

// mmapArena backs the address space with an anonymous private mapping.
// Growth maps a larger region, memmoves the live prefix across, and
// unmaps the old one — the arena analogue of the heap backend's slice
// regrow, but with memory the Go garbage collector never scans, which
// is the point: a multi-gigabyte payload arena adds nothing to GC mark
// time.
type mmapArena struct {
	mem    []byte
	timing bool
	closed bool
	c      Counters
}

// mmapInitial is the first mapping's size. One page keeps empty arenas
// nearly free; growth doubles from here.
const mmapInitial = 1 << 12

func newMmap() (Backend, error) {
	mem, err := syscall.Mmap(-1, 0, mmapInitial,
		syscall.PROT_READ|syscall.PROT_WRITE,
		syscall.MAP_ANON|syscall.MAP_PRIVATE)
	if err != nil {
		return nil, fmt.Errorf("arena: mmap: %w", err)
	}
	return &mmapArena{mem: mem[:0:len(mem)]}, nil
}

func (a *mmapArena) Kind() Kind { return Mmap }
func (a *mmapArena) Real() bool { return true }

func (a *mmapArena) Ensure(n int64) {
	if a.closed {
		panic(ErrClosed)
	}
	if n <= int64(len(a.mem)) {
		return
	}
	if n <= int64(cap(a.mem)) {
		a.mem = a.mem[:n]
		return
	}
	newCap := int64(cap(a.mem)) * 2
	if newCap < n {
		newCap = n
	}
	// Round up to a page multiple.
	const page = 1 << 12
	newCap = (newCap + page - 1) &^ (page - 1)
	grown, err := syscall.Mmap(-1, 0, int(newCap),
		syscall.PROT_READ|syscall.PROT_WRITE,
		syscall.MAP_ANON|syscall.MAP_PRIVATE)
	if err != nil {
		panic(fmt.Sprintf("arena: mmap grow to %d bytes: %v", newCap, err))
	}
	copy(grown, a.mem)
	old := a.mem[:cap(a.mem)]
	a.mem = grown[:n:len(grown)]
	if len(old) > 0 {
		if err := syscall.Munmap(old); err != nil {
			panic(fmt.Sprintf("arena: munmap: %v", err))
		}
	}
}

func (a *mmapArena) Copy(dst, src, size int64) {
	end := dst + size
	if se := src + size; se > end {
		end = se
	}
	a.Ensure(end)
	if a.timing {
		t0 := time.Now()
		copy(a.mem[dst:dst+size], a.mem[src:src+size])
		a.c.CopyNanos += int64(time.Since(t0))
	} else {
		copy(a.mem[dst:dst+size], a.mem[src:src+size])
	}
	a.c.BytesMoved += size
	a.c.Copies++
}

func (a *mmapArena) Bytes(start, size int64) []byte {
	a.Ensure(start + size)
	return a.mem[start : start+size : start+size]
}

func (a *mmapArena) Counters() Counters { return a.c }
func (a *mmapArena) SetTiming(on bool)  { a.timing = on }

func (a *mmapArena) Sync() error {
	if a.closed {
		return ErrClosed
	}
	return nil // anonymous mapping: no backing media to flush
}

func (a *mmapArena) Close() error {
	if a.closed {
		return nil
	}
	a.closed = true
	old := a.mem[:cap(a.mem)]
	a.mem = nil
	if len(old) == 0 {
		return nil
	}
	return syscall.Munmap(old)
}
