package arena

import (
	"bytes"
	"testing"
)

func backends(t *testing.T) map[string]Backend {
	t.Helper()
	out := make(map[string]Backend)
	for _, k := range []Kind{Metered, Heap, Mmap} {
		b, err := New(k)
		if err != nil {
			t.Fatalf("New(%v): %v", k, err)
		}
		out[k.String()] = b
	}
	return out
}

func TestKindRoundTrip(t *testing.T) {
	for _, k := range []Kind{Metered, Heap, Mmap} {
		got, err := ParseKind(k.String())
		if err != nil || got != k {
			t.Fatalf("ParseKind(%q) = %v, %v", k.String(), got, err)
		}
	}
	if _, err := ParseKind("disk"); err == nil {
		t.Fatal("ParseKind accepted an unknown name")
	}
}

// TestCopyCounting: every backend counts the same moved volume; only
// real backends move bytes.
func TestCopyCounting(t *testing.T) {
	for name, b := range backends(t) {
		b.Copy(100, 0, 8)
		b.Copy(0, 100, 8)
		c := b.Counters()
		if c.BytesMoved != 16 || c.Copies != 2 {
			t.Errorf("%s: counters = %+v, want BytesMoved=16 Copies=2", name, c)
		}
		if err := b.Close(); err != nil {
			t.Errorf("%s: Close: %v", name, err)
		}
	}
}

// TestPayloadRoundTrip: bytes written through Bytes survive a chain of
// copies, including self-overlapping ones (memmove semantics).
func TestPayloadRoundTrip(t *testing.T) {
	for name, b := range backends(t) {
		if !b.Real() {
			if b.Bytes(0, 8) != nil {
				t.Errorf("%s: metered Bytes must be nil", name)
			}
			continue
		}
		payload := []byte("cost-oblivious")
		n := int64(len(payload))
		copy(b.Bytes(10, n), payload)
		b.Copy(500, 10, n)  // disjoint move
		b.Copy(495, 500, n) // overlap left by 5
		b.Copy(499, 495, n) // overlap right by 4
		if got := b.Bytes(499, n); !bytes.Equal(got, payload) {
			t.Errorf("%s: payload corrupted: %q", name, got)
		}
		if err := b.Close(); err != nil {
			t.Errorf("%s: Close: %v", name, err)
		}
	}
}

// TestGrowthPreservesPrefix: growth (slice regrow, mmap remap) must
// keep every previously written byte.
func TestGrowthPreservesPrefix(t *testing.T) {
	for name, b := range backends(t) {
		if !b.Real() {
			continue
		}
		copy(b.Bytes(0, 4), "abcd")
		b.Ensure(1 << 20) // force at least one growth step
		if got := b.Bytes(0, 4); !bytes.Equal(got, []byte("abcd")) {
			t.Errorf("%s: growth lost prefix: %q", name, got)
		}
		copy(b.Bytes(1<<20-2, 2), "zz")
		if got := b.Bytes(1<<20-2, 2); !bytes.Equal(got, []byte("zz")) {
			t.Errorf("%s: high write lost: %q", name, got)
		}
		if err := b.Close(); err != nil {
			t.Errorf("%s: Close: %v", name, err)
		}
	}
}

// TestTiming: CopyNanos stays zero untimed and only advances on real
// backends while armed.
func TestTiming(t *testing.T) {
	for name, b := range backends(t) {
		b.Copy(1<<16, 0, 1<<15)
		if c := b.Counters(); c.CopyNanos != 0 {
			t.Errorf("%s: untimed CopyNanos = %d", name, c.CopyNanos)
		}
		b.SetTiming(true)
		for i := 0; i < 64; i++ {
			b.Copy(1<<16, 0, 1<<15)
		}
		c := b.Counters()
		if b.Real() && c.CopyNanos <= 0 {
			t.Errorf("%s: timed CopyNanos = %d, want > 0", name, c.CopyNanos)
		}
		if !b.Real() && c.CopyNanos != 0 {
			t.Errorf("%s: metered CopyNanos = %d", name, c.CopyNanos)
		}
		b.Close()
	}
}
