package arena

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"realloc/internal/faultfs"
)

func backends(t *testing.T) map[string]Backend {
	t.Helper()
	out := make(map[string]Backend)
	for _, k := range []Kind{Metered, Heap, Mmap} {
		b, err := New(k)
		if err != nil {
			t.Fatalf("New(%v): %v", k, err)
		}
		out[k.String()] = b
	}
	b, err := Create(filepath.Join(t.TempDir(), "arena.img"))
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	out[File.String()] = b
	return out
}

func TestKindRoundTrip(t *testing.T) {
	for _, k := range []Kind{Metered, Heap, Mmap} {
		got, err := ParseKind(k.String())
		if err != nil || got != k {
			t.Fatalf("ParseKind(%q) = %v, %v", k.String(), got, err)
		}
	}
	if _, err := ParseKind("disk"); err == nil {
		t.Fatal("ParseKind accepted an unknown name")
	}
}

// TestCopyCounting: every backend counts the same moved volume; only
// real backends move bytes.
func TestCopyCounting(t *testing.T) {
	for name, b := range backends(t) {
		b.Copy(100, 0, 8)
		b.Copy(0, 100, 8)
		c := b.Counters()
		if c.BytesMoved != 16 || c.Copies != 2 {
			t.Errorf("%s: counters = %+v, want BytesMoved=16 Copies=2", name, c)
		}
		if err := b.Close(); err != nil {
			t.Errorf("%s: Close: %v", name, err)
		}
	}
}

// TestPayloadRoundTrip: bytes written through Bytes survive a chain of
// copies, including self-overlapping ones (memmove semantics).
func TestPayloadRoundTrip(t *testing.T) {
	for name, b := range backends(t) {
		if !b.Real() {
			if b.Bytes(0, 8) != nil {
				t.Errorf("%s: metered Bytes must be nil", name)
			}
			continue
		}
		payload := []byte("cost-oblivious")
		n := int64(len(payload))
		copy(b.Bytes(10, n), payload)
		b.Copy(500, 10, n)  // disjoint move
		b.Copy(495, 500, n) // overlap left by 5
		b.Copy(499, 495, n) // overlap right by 4
		if got := b.Bytes(499, n); !bytes.Equal(got, payload) {
			t.Errorf("%s: payload corrupted: %q", name, got)
		}
		if err := b.Close(); err != nil {
			t.Errorf("%s: Close: %v", name, err)
		}
	}
}

// TestGrowthPreservesPrefix: growth (slice regrow, mmap remap) must
// keep every previously written byte.
func TestGrowthPreservesPrefix(t *testing.T) {
	for name, b := range backends(t) {
		if !b.Real() {
			continue
		}
		copy(b.Bytes(0, 4), "abcd")
		b.Ensure(1 << 20) // force at least one growth step
		if got := b.Bytes(0, 4); !bytes.Equal(got, []byte("abcd")) {
			t.Errorf("%s: growth lost prefix: %q", name, got)
		}
		copy(b.Bytes(1<<20-2, 2), "zz")
		if got := b.Bytes(1<<20-2, 2); !bytes.Equal(got, []byte("zz")) {
			t.Errorf("%s: high write lost: %q", name, got)
		}
		if err := b.Close(); err != nil {
			t.Errorf("%s: Close: %v", name, err)
		}
	}
}

// TestSyncNoop: Sync on memory-only backends is a nil no-op, on every
// backend it errors (not panics) after Close.
func TestSyncNoop(t *testing.T) {
	for name, b := range backends(t) {
		if err := b.Sync(); err != nil {
			t.Errorf("%s: Sync on open backend: %v", name, err)
		}
		if err := b.Close(); err != nil {
			t.Errorf("%s: Close: %v", name, err)
		}
	}
}

// TestErrClosed: every backend fails fast after Close — payload access
// panics with the sentinel, Sync returns it, Close stays idempotent.
func TestErrClosed(t *testing.T) {
	for name, b := range backends(t) {
		if err := b.Close(); err != nil {
			t.Fatalf("%s: Close: %v", name, err)
		}
		if err := b.Close(); err != nil {
			t.Errorf("%s: second Close: %v", name, err)
		}
		if err := b.Sync(); !errors.Is(err, ErrClosed) {
			t.Errorf("%s: Sync after Close = %v, want ErrClosed", name, err)
		}
		for op, fn := range map[string]func(){
			"Ensure": func() { b.Ensure(8) },
			"Copy":   func() { b.Copy(8, 0, 8) },
			"Bytes":  func() { b.Bytes(0, 8) },
		} {
			func() {
				defer func() {
					if r := recover(); r != ErrClosed {
						t.Errorf("%s: %s after Close panicked %v, want ErrClosed", name, op, r)
					}
				}()
				fn()
				t.Errorf("%s: %s after Close did not panic", name, op)
			}()
		}
	}
}

// TestFileKind: the file backend needs a path, is not a ParseKind name
// (the benchmark backend panels stay memory-only), and reports itself.
func TestFileKind(t *testing.T) {
	if _, err := New(File); err == nil {
		t.Fatal("New(File) must demand a path")
	}
	if _, err := ParseKind("file"); err == nil {
		t.Fatal("ParseKind must not accept \"file\"")
	}
	if File.String() != "file" {
		t.Fatalf("File.String() = %q", File.String())
	}
}

// TestFilePersistence: bytes written before Sync survive Close and
// reopen via Open; bytes written after the last Sync may or may not —
// here, with no crash in between, Close alone must not lose synced
// data.
func TestFilePersistence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "arena.img")
	b, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if b.Kind() != File || !b.Real() {
		t.Fatalf("file arena kind=%v real=%v", b.Kind(), b.Real())
	}
	payload := []byte("durable payload bytes")
	n := int64(len(payload))
	copy(b.Bytes(100, n), payload)
	b.Copy(5000, 100, n) // cross-page move, forces growth
	if err := b.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	if err := b.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	r, err := Open(path)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer r.Close()
	if got := r.Bytes(100, n); !bytes.Equal(got, payload) {
		t.Fatalf("original extent lost: %q", got)
	}
	if got := r.Bytes(5000, n); !bytes.Equal(got, payload) {
		t.Fatalf("moved extent lost: %q", got)
	}
}

// TestFileGrowthPreservesAcrossReopen: growth remaps the file; written
// bytes on both sides of the remap must survive a sync/reopen cycle.
func TestFileGrowthPreservesAcrossReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "arena.img")
	b, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	copy(b.Bytes(0, 4), "abcd")
	b.Ensure(1 << 20)
	copy(b.Bytes(1<<20-2, 2), "zz")
	if err := b.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if got := r.Bytes(0, 4); !bytes.Equal(got, []byte("abcd")) {
		t.Fatalf("prefix lost: %q", got)
	}
	if got := r.Bytes(1<<20-2, 2); !bytes.Equal(got, []byte("zz")) {
		t.Fatalf("high bytes lost: %q", got)
	}
	if st, err := os.Stat(path); err != nil || st.Size() < 1<<20 {
		t.Fatalf("arena file did not grow: %v, %v", st, err)
	}
}

// TestFromFileOverMemFS: the fault-injection seam — a file arena over
// an in-memory fault file only persists what Sync pushed before a
// crash.
func TestFromFileOverMemFS(t *testing.T) {
	fs := faultfs.NewMemFS(nil)
	f, err := fs.OpenFile("arena")
	if err != nil {
		t.Fatal(err)
	}
	b, err := FromFile(f)
	if err != nil {
		t.Fatal(err)
	}
	copy(b.Bytes(0, 6), "synced")
	if err := b.Sync(); err != nil {
		t.Fatal(err)
	}
	copy(b.Bytes(6, 8), "volatile")

	fs.Crash()
	f2, err := fs.OpenFile("arena")
	if err != nil {
		t.Fatal(err)
	}
	r, err := FromFile(f2)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Bytes(0, 6); !bytes.Equal(got, []byte("synced")) {
		t.Fatalf("synced bytes lost: %q", got)
	}
	if got := r.Bytes(6, 8); bytes.Equal(got, []byte("volatile")) {
		t.Fatal("unsynced bytes survived a crash")
	}
}

// TestTiming: CopyNanos stays zero untimed and only advances on real
// backends while armed.
func TestTiming(t *testing.T) {
	for name, b := range backends(t) {
		b.Copy(1<<16, 0, 1<<15)
		if c := b.Counters(); c.CopyNanos != 0 {
			t.Errorf("%s: untimed CopyNanos = %d", name, c.CopyNanos)
		}
		b.SetTiming(true)
		for i := 0; i < 64; i++ {
			b.Copy(1<<16, 0, 1<<15)
		}
		c := b.Counters()
		if b.Real() && c.CopyNanos <= 0 {
			t.Errorf("%s: timed CopyNanos = %d, want > 0", name, c.CopyNanos)
		}
		if !b.Real() && c.CopyNanos != 0 {
			t.Errorf("%s: metered CopyNanos = %d", name, c.CopyNanos)
		}
		b.Close()
	}
}
