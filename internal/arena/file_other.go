//go:build !linux

package arena

import (
	"path/filepath"

	"realloc/internal/faultfs"
)

// Platforms without a portable msync get the plain-I/O file backend:
// same durability contract (Sync writes the image back and fsyncs),
// heap-mirrored payload bytes instead of a shared mapping.

// Create builds a fresh file-backed arena at path, truncating any
// existing file.
func Create(path string) (Backend, error) {
	f, err := faultfs.OS{Dir: filepath.Dir(path)}.OpenFile(filepath.Base(path))
	if err != nil {
		return nil, err
	}
	if err := f.Truncate(0); err != nil {
		f.Close()
		return nil, err
	}
	return FromFile(f)
}

// Open reopens a file-backed arena, exposing the file's current bytes
// as the address-space image (creating an empty arena if the file does
// not exist).
func Open(path string) (Backend, error) {
	f, err := faultfs.OS{Dir: filepath.Dir(path)}.OpenFile(filepath.Base(path))
	if err != nil {
		return nil, err
	}
	return FromFile(f)
}
