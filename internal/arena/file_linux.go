//go:build linux

package arena

import (
	"fmt"
	"os"
	"syscall"
	"time"
	"unsafe"
)

// mmapFile backs the address space with a shared file mapping: the
// mirror IS the page cache, so relocations are plain memmoves and Sync
// is msync(MS_SYNC) + fsync with no write-back copy. Growth ftruncates
// the file and remaps — MAP_SHARED means the remap sees the same pages,
// so no byte is copied on grow either.
type mmapFile struct {
	f      *os.File
	mem    []byte // len = logical size, cap = mapped (== file) size
	timing bool
	closed bool
	c      Counters
}

const filePage = 1 << 12

// Create builds a fresh file-backed arena at path, truncating any
// existing file.
func Create(path string) (Backend, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("arena: create %s: %w", path, err)
	}
	return mapFile(f, 0)
}

// Open reopens a file-backed arena, exposing the file's current bytes
// as the address-space image (creating an empty arena if the file does
// not exist). This is the recovery path: the image is whatever the
// last completed Sync made durable, plus any later writes the crash
// happened to leave behind.
func Open(path string) (Backend, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("arena: open %s: %w", path, err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("arena: open %s: %w", path, err)
	}
	return mapFile(f, st.Size())
}

func mapFile(f *os.File, logical int64) (Backend, error) {
	capBytes := logical
	if capBytes < filePage {
		capBytes = filePage
	}
	capBytes = (capBytes + filePage - 1) &^ (filePage - 1)
	if err := f.Truncate(capBytes); err != nil {
		f.Close()
		return nil, fmt.Errorf("arena: size arena file: %w", err)
	}
	mem, err := syscall.Mmap(int(f.Fd()), 0, int(capBytes),
		syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("arena: mmap arena file: %w", err)
	}
	return &mmapFile{f: f, mem: mem[:logical:capBytes]}, nil
}

func (a *mmapFile) Kind() Kind { return File }
func (a *mmapFile) Real() bool { return true }

func (a *mmapFile) Ensure(n int64) {
	if a.closed {
		panic(ErrClosed)
	}
	if n <= int64(len(a.mem)) {
		return
	}
	if n <= int64(cap(a.mem)) {
		a.mem = a.mem[:n]
		return
	}
	newCap := int64(cap(a.mem)) * 2
	if newCap < n {
		newCap = n
	}
	newCap = (newCap + filePage - 1) &^ (filePage - 1)
	old := a.mem[:cap(a.mem)]
	if err := syscall.Munmap(old); err != nil {
		panic(fmt.Sprintf("arena: munmap for grow: %v", err))
	}
	a.mem = nil
	if err := a.f.Truncate(newCap); err != nil {
		panic(fmt.Sprintf("arena: grow arena file to %d bytes: %v", newCap, err))
	}
	grown, err := syscall.Mmap(int(a.f.Fd()), 0, int(newCap),
		syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED)
	if err != nil {
		panic(fmt.Sprintf("arena: remap to %d bytes: %v", newCap, err))
	}
	a.mem = grown[:n:len(grown)]
}

func (a *mmapFile) Copy(dst, src, size int64) {
	end := dst + size
	if se := src + size; se > end {
		end = se
	}
	a.Ensure(end)
	if a.timing {
		t0 := time.Now()
		copy(a.mem[dst:dst+size], a.mem[src:src+size])
		a.c.CopyNanos += int64(time.Since(t0))
	} else {
		copy(a.mem[dst:dst+size], a.mem[src:src+size])
	}
	a.c.BytesMoved += size
	a.c.Copies++
}

func (a *mmapFile) Bytes(start, size int64) []byte {
	a.Ensure(start + size)
	return a.mem[start : start+size : start+size]
}

func (a *mmapFile) Counters() Counters { return a.c }
func (a *mmapFile) SetTiming(on bool)  { a.timing = on }

// Sync flushes the mapping to media: msync(MS_SYNC) pushes the dirty
// pages to the file, fsync makes the file durable.
func (a *mmapFile) Sync() error {
	if a.closed {
		return ErrClosed
	}
	if len(a.mem) > 0 {
		_, _, errno := syscall.Syscall(syscall.SYS_MSYNC,
			uintptr(unsafe.Pointer(&a.mem[0])), uintptr(len(a.mem)), syscall.MS_SYNC)
		if errno != 0 {
			return fmt.Errorf("arena: msync: %w", errno)
		}
	}
	if err := a.f.Sync(); err != nil {
		return fmt.Errorf("arena: fsync: %w", err)
	}
	return nil
}

func (a *mmapFile) Close() error {
	if a.closed {
		return nil
	}
	a.closed = true
	old := a.mem[:cap(a.mem)]
	a.mem = nil
	if len(old) > 0 {
		if err := syscall.Munmap(old); err != nil {
			a.f.Close()
			return err
		}
	}
	return a.f.Close()
}
