package arena

import (
	"errors"
	"fmt"
	"io"
	"syscall"
	"time"

	"realloc/internal/faultfs"
)

// fileArena is the plain-I/O file backend: a heap mirror of the
// address space plus a backing file that Sync rewrites and fsyncs. It
// serves two roles — the portable fallback where file-backed mmap is
// unavailable, and the fault-injection seam (FromFile accepts any
// faultfs.File, including MemFS handles whose writes and syncs an
// Injector can crash, tear, or drop).
//
// Between Syncs the file lags the mirror arbitrarily, which is exactly
// the durability contract the checkpoint protocol assumes: only bytes
// covered by a completed Sync are promised to survive.
type fileArena struct {
	f      faultfs.File
	mem    []byte
	timing bool
	closed bool
	c      Counters
	// retries/retryDelay govern the transient-EIO retry loop on the
	// Sync write-back, mirroring the WAL writer's policy.
	retries    int
	retryDelay time.Duration
}

// FromFile builds a file backend over an already-open file, loading
// any existing content as the initial address-space image. The arena
// takes ownership of the handle: Close closes it.
func FromFile(f faultfs.File) (Backend, error) {
	sz, err := f.Size()
	if err != nil {
		return nil, fmt.Errorf("arena: file size: %w", err)
	}
	mem := make([]byte, sz)
	if sz > 0 {
		if n, err := f.ReadAt(mem, 0); err != nil && !(errors.Is(err, io.EOF) && int64(n) == sz) {
			return nil, fmt.Errorf("arena: load file image: %w", err)
		}
	}
	return &fileArena{f: f, mem: mem, retries: 5, retryDelay: time.Millisecond}, nil
}

func (a *fileArena) Kind() Kind { return File }
func (a *fileArena) Real() bool { return true }

func (a *fileArena) Ensure(n int64) {
	if a.closed {
		panic(ErrClosed)
	}
	if n <= int64(len(a.mem)) {
		return
	}
	newLen := int64(len(a.mem)) * 2
	if newLen < n {
		newLen = n
	}
	grown := make([]byte, newLen)
	copy(grown, a.mem)
	a.mem = grown
}

func (a *fileArena) Copy(dst, src, size int64) {
	end := dst + size
	if se := src + size; se > end {
		end = se
	}
	a.Ensure(end)
	if a.timing {
		t0 := time.Now()
		copy(a.mem[dst:dst+size], a.mem[src:src+size])
		a.c.CopyNanos += int64(time.Since(t0))
	} else {
		copy(a.mem[dst:dst+size], a.mem[src:src+size])
	}
	a.c.BytesMoved += size
	a.c.Copies++
}

func (a *fileArena) Bytes(start, size int64) []byte {
	a.Ensure(start + size)
	return a.mem[start : start+size : start+size]
}

func (a *fileArena) Counters() Counters { return a.c }
func (a *fileArena) SetTiming(on bool)  { a.timing = on }

// Sync writes the mirror back to the file and fsyncs it. A transient
// EIO on the write-back is retried with doubling backoff; the injected
// crash sentinel and any other error are final (the caller treats the
// checkpoint as failed).
func (a *fileArena) Sync() error {
	if a.closed {
		return ErrClosed
	}
	if len(a.mem) > 0 {
		delay := a.retryDelay
		var err error
		for attempt := 0; ; attempt++ {
			_, err = a.f.WriteAt(a.mem, 0)
			if err == nil {
				break
			}
			if !errors.Is(err, syscall.EIO) || errors.Is(err, faultfs.ErrInjectedCrash) || attempt >= a.retries {
				return fmt.Errorf("arena: sync write-back: %w", err)
			}
			if delay > 0 {
				time.Sleep(delay)
			}
			delay *= 2
		}
	}
	if err := a.f.Sync(); err != nil {
		return fmt.Errorf("arena: fsync: %w", err)
	}
	return nil
}

func (a *fileArena) Close() error {
	if a.closed {
		return nil
	}
	a.closed = true
	a.mem = nil
	return a.f.Close()
}
