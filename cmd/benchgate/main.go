// Command benchgate is the CI benchmark-regression gate. It parses `go
// test -bench` output (a file or stdin), checks benchmark ratios against
// limits, and writes a BENCH_<id>.json trajectory record (schema:
// internal/benchfmt) so every CI run leaves a comparable artifact
// instead of a log line that disappears with the job.
//
// The default mode gates churn scaling in live volume:
//
//	go test -run '^$' -bench BenchmarkChurnScaling -benchtime 20000x . | \
//	    benchgate [-in -] [-out BENCH_ci_churn.json]
//	    [-bench BenchmarkChurnScaling] [-small 100000] [-big 1000000]
//	    [-gates amortized=4,checkpointed=4,deamortized=3,fcs=4]
//
// With -scaling, it instead gates parallel scaling of the sharded
// front-end from a `-cpu` sweep: the gated scenario's throughput at
// -procsHigh must be at least -minSpeedup times its throughput at
// -procsLow (ns/op from b.RunParallel is wall-clock per op, so the
// speedup is nsLow/nsHigh), and every scenario×procs point found is
// recorded in the trajectory file:
//
//	go test -run '^$' -bench BenchmarkShardedParallel -cpu 1,2,4,8 \
//	    -benchtime 30000x . | \
//	    benchgate -scaling [-scalingBench BenchmarkShardedParallel]
//	    [-scenario mixed] [-procsLow 1] [-procsHigh 8] [-minSpeedup 4]
//	    [-out BENCH_ci_scaling.json]
//
// With -overhead, it gates the telemetry layer's cost: every
// <variant>/on result of the overhead benchmark must be within
// -maxOverhead (default 1.10, i.e. ≤10% slower) of its <variant>/off
// twin, and a pair missing either half fails:
//
//	go test -run '^$' -bench BenchmarkChurnTelemetry -benchtime 30000x . | \
//	    benchgate -overhead [-overheadBench BenchmarkChurnTelemetry]
//	    [-maxOverhead 1.10] [-out BENCH_ci_overhead.json]
//
// With -batch, it gates what the batched request path buys: the
// perOp lane of the batch benchmark must cost at least
// -minBatchSpeedup times the batch64 lane's ns/op. Run the benchmark
// with -count so each lane has several samples; the gate compares the
// per-lane minima, which cancels shared-runner noise:
//
//	go test -run '^$' -bench BenchmarkBatchChurn -benchtime 2s -count 3 . | \
//	    benchgate -batch [-batchBench BenchmarkBatchChurn]
//	    [-minBatchSpeedup 2] [-out BENCH_ci_batch.json]
//
// With -bytes, it gates the cost of paying real memmoves: every
// <core>/heap result of the backend benchmark must be within
// -maxBytesOverhead (default 1.75) of its <core>/metered twin, so a
// change that silently inflates the physical cost of the cost model's
// "moved volume" unit fails CI:
//
//	go test -run '^$' -bench BenchmarkChurnBackend -benchtime 30000x . | \
//	    benchgate -bytes [-bytesBench BenchmarkChurnBackend]
//	    [-maxBytesOverhead 1.75] [-out BENCH_ci_bytes.json]
//
// With -durable, it gates the price of durability: the wal lane of the
// durable churn benchmark (WAL appends per placement, arena sync +
// group-fsync per checkpoint) must stay within -maxDurableOverhead
// (default 40) of the heap lane over identical churn, and one full WAL
// replay of the 1e5-record log (BenchmarkWALReplay/ops=100000) must
// finish within -maxReplayMs (default 500):
//
//	go test -run '^$' -bench 'BenchmarkDurableChurn|BenchmarkWALReplay' \
//	    -benchtime 1s . | \
//	    benchgate -durable [-durableBench BenchmarkDurableChurn]
//	    [-replayBench BenchmarkWALReplay/ops=100000]
//	    [-maxDurableOverhead 40] [-maxReplayMs 500]
//	    [-out BENCH_ci_durable.json]
//
// Any gate fails (exit 1) when its ratio is out of bounds or when
// expected results are missing — a silent benchmark rename must not
// pass the gate.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"realloc/internal/benchfmt"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		in    = flag.String("in", "-", "bench output to read (- for stdin)")
		out   = flag.String("out", "", "trajectory record to write (empty: mode default; 'none' to skip)")
		bench = flag.String("bench", "BenchmarkChurnScaling", "benchmark family to gate")
		small = flag.Int64("small", 100_000, "small live-cell size")
		big   = flag.Int64("big", 1_000_000, "big live-cell size")
		gates = flag.String("gates", "amortized=4,checkpointed=4,deamortized=3,fcs=4",
			"comma-separated core-or-variant=maxRatio limits")
		scaling       = flag.Bool("scaling", false, "gate parallel scaling of a -cpu sweep instead of churn ratios")
		scalingBench  = flag.String("scalingBench", "BenchmarkShardedParallel", "scaling benchmark family")
		scenario      = flag.String("scenario", "mixed", "scaling scenario the gate applies to")
		procsLow      = flag.Int("procsLow", 1, "baseline GOMAXPROCS of the scaling gate")
		procsHigh     = flag.Int("procsHigh", 8, "contended GOMAXPROCS of the scaling gate")
		minSpeedup    = flag.Float64("minSpeedup", 4, "required procsHigh/procsLow throughput ratio")
		overhead      = flag.Bool("overhead", false, "gate telemetry-on vs telemetry-off churn cost instead of churn ratios")
		overheadBench = flag.String("overheadBench", "BenchmarkChurnTelemetry", "overhead benchmark family")
		maxOverhead   = flag.Float64("maxOverhead", 1.10, "max allowed telemetry-on/telemetry-off ns/op ratio")
		batch         = flag.Bool("batch", false, "gate batched-vs-per-op churn speedup instead of churn ratios")
		batchBench    = flag.String("batchBench", "BenchmarkBatchChurn", "batch speedup benchmark family")
		minBatch      = flag.Float64("minBatchSpeedup", 2, "required perOp/batch64 ns/op speedup")
		bytesMode     = flag.Bool("bytes", false, "gate real-backend (heap) vs metered churn cost instead of churn ratios")
		bytesBench    = flag.String("bytesBench", "BenchmarkChurnBackend", "backend cost benchmark family")
		maxBytes      = flag.Float64("maxBytesOverhead", 1.75, "max allowed heap/metered ns/op ratio per core")
		durable       = flag.Bool("durable", false, "gate durable-mode churn overhead and WAL replay time instead of churn ratios")
		durableBench  = flag.String("durableBench", "BenchmarkDurableChurn", "durable churn benchmark family (heap and wal lanes)")
		replayBench   = flag.String("replayBench", "BenchmarkWALReplay/ops=100000", "WAL replay benchmark result")
		maxDurable    = flag.Float64("maxDurableOverhead", 40, "max allowed wal/heap ns/op ratio")
		maxReplayMs   = flag.Float64("maxReplayMs", 500, "max allowed ms per full WAL replay")
	)
	flag.Parse()

	var src io.Reader = os.Stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			return fail(err)
		}
		defer f.Close()
		src = f
	}
	results, err := benchfmt.ParseBench(src)
	if err != nil {
		return fail(err)
	}

	if *scaling {
		return runScaling(results, *scalingBench, *scenario, *procsLow, *procsHigh, *minSpeedup,
			defaultOut(*out, "BENCH_ci_scaling.json"))
	}
	if *overhead {
		return runOverhead(results, *overheadBench, *maxOverhead,
			defaultOut(*out, "BENCH_ci_overhead.json"))
	}
	if *batch {
		return runBatch(results, *batchBench, *minBatch,
			defaultOut(*out, "BENCH_ci_batch.json"))
	}
	if *bytesMode {
		return runBytes(results, *bytesBench, *maxBytes,
			defaultOut(*out, "BENCH_ci_bytes.json"))
	}
	if *durable {
		return runDurable(results, *durableBench, *replayBench, *maxDurable, *maxReplayMs,
			defaultOut(*out, "BENCH_ci_durable.json"))
	}
	*out = defaultOut(*out, "BENCH_ci_churn.json")

	limits, order, err := parseGates(*gates)
	if err != nil {
		return fail(err)
	}

	findings := map[string]float64{}
	bad := false
	for _, variant := range order {
		limit := limits[variant]
		smallNs, err1 := benchfmt.NsPerOp(results, fmt.Sprintf("%s/%s/cells=%d", *bench, variant, *small))
		bigNs, err2 := benchfmt.NsPerOp(results, fmt.Sprintf("%s/%s/cells=%d", *bench, variant, *big))
		if err1 != nil || err2 != nil || smallNs <= 0 {
			fmt.Fprintf(os.Stderr, "benchgate: missing benchmark data for %s (%v, %v)\n", variant, err1, err2)
			bad = true
			continue
		}
		ratio := bigNs / smallNs
		findings[variant+"_ns_per_op_small"] = smallNs
		findings[variant+"_ns_per_op_big"] = bigNs
		findings[variant+"_ratio"] = ratio
		findings[variant+"_ratio_limit"] = limit
		status := "ok"
		if ratio > limit {
			status = fmt.Sprintf("FAIL (limit %g)", limit)
			bad = true
		}
		fmt.Printf("%s: %de5-cells=%.0fns/op %de5-cells=%.0fns/op ratio=%.2f %s\n",
			variant, *small/100_000, smallNs, *big/100_000, bigNs, ratio, status)
	}

	if err := writeRecord(*out, "ci_churn", "CI churn-scaling gate",
		fmt.Sprintf("per-op churn cost stays near-flat from %d to %d live cells", *small, *big),
		findings); err != nil {
		return fail(err)
	}
	if bad {
		fmt.Fprintln(os.Stderr, "benchgate: ratio regression (or missing data) — see above")
		return 1
	}
	return 0
}

// runScaling is the -scaling mode: every scenario×procs point of the
// sweep lands in the trajectory findings (keyed scenario/p<procs>/ns_per_op
// and scenario/speedup_p<low>_p<high>), and the gated scenario's
// high-procs speedup must clear minSpeedup.
func runScaling(results []benchfmt.Result, family, scenario string, procsLow, procsHigh int, minSpeedup float64, out string) int {
	findings := map[string]float64{}
	scenarios := map[string]bool{}
	prefix := family + "/"
	for _, r := range results {
		if !strings.HasPrefix(r.Name, prefix) {
			continue
		}
		sc := strings.TrimPrefix(r.Name, prefix)
		scenarios[sc] = true
		findings[fmt.Sprintf("%s/p%d/ns_per_op", sc, r.Procs)] = r.NsPerOp
	}
	if len(scenarios) == 0 {
		return fail(fmt.Errorf("no %s/* results in the input", family))
	}
	for sc := range scenarios {
		low, err1 := benchfmt.NsPerOpAt(results, prefix+sc, procsLow)
		high, err2 := benchfmt.NsPerOpAt(results, prefix+sc, procsHigh)
		if err1 != nil || err2 != nil || high <= 0 {
			continue
		}
		findings[fmt.Sprintf("%s/speedup_p%d_p%d", sc, procsLow, procsHigh)] = low / high
	}

	bad := false
	gateKey := fmt.Sprintf("%s/speedup_p%d_p%d", scenario, procsLow, procsHigh)
	speedup, ok := findings[gateKey]
	if !ok {
		fmt.Fprintf(os.Stderr, "benchgate: missing %s results at %d and/or %d procs — a renamed benchmark must not pass the gate\n",
			prefix+scenario, procsLow, procsHigh)
		bad = true
	} else {
		findings[gateKey+"_min"] = minSpeedup
		status := "ok"
		if speedup < minSpeedup {
			status = fmt.Sprintf("FAIL (min %g)", minSpeedup)
			bad = true
		}
		fmt.Printf("%s: %d-proc vs %d-proc speedup %.2fx %s\n", scenario, procsHigh, procsLow, speedup, status)
	}
	names := make([]string, 0, len(scenarios))
	for sc := range scenarios {
		if sc != scenario {
			names = append(names, sc)
		}
	}
	sort.Strings(names)
	for _, sc := range names {
		if v, ok := findings[fmt.Sprintf("%s/speedup_p%d_p%d", sc, procsLow, procsHigh)]; ok {
			fmt.Printf("%s: %d-proc vs %d-proc speedup %.2fx (informational)\n", sc, procsHigh, procsLow, v)
		}
	}

	if err := writeRecord(out, "ci_scaling", "CI parallel-scaling gate",
		fmt.Sprintf("sharded %s throughput at %d procs is >= %gx its %d-proc throughput", scenario, procsHigh, minSpeedup, procsLow),
		findings); err != nil {
		return fail(err)
	}
	if bad {
		fmt.Fprintln(os.Stderr, "benchgate: scaling regression (or missing data) — see above")
		return 1
	}
	return 0
}

// runOverhead is the -overhead mode: the benchmark family holds
// <variant>/off and <variant>/on twins over an identical churn stream;
// every variant's on/off ns/op ratio must stay within maxRatio, and a
// variant with only one half of the pair fails the gate outright.
func runOverhead(results []benchfmt.Result, family string, maxRatio float64, out string) int {
	prefix := family + "/"
	variants := map[string]bool{}
	for _, r := range results {
		if !strings.HasPrefix(r.Name, prefix) {
			continue
		}
		if v, _, ok := strings.Cut(strings.TrimPrefix(r.Name, prefix), "/"); ok {
			variants[v] = true
		}
	}
	if len(variants) == 0 {
		return fail(fmt.Errorf("no %s/* results in the input", family))
	}
	order := make([]string, 0, len(variants))
	for v := range variants {
		order = append(order, v)
	}
	sort.Strings(order)

	findings := map[string]float64{}
	bad := false
	for _, v := range order {
		offNs, err1 := benchfmt.NsPerOp(results, prefix+v+"/off")
		onNs, err2 := benchfmt.NsPerOp(results, prefix+v+"/on")
		if err1 != nil || err2 != nil || offNs <= 0 {
			fmt.Fprintf(os.Stderr, "benchgate: incomplete on/off pair for %s (%v, %v)\n", v, err1, err2)
			bad = true
			continue
		}
		ratio := onNs / offNs
		findings[v+"/ns_per_op_off"] = offNs
		findings[v+"/ns_per_op_on"] = onNs
		findings[v+"/overhead_ratio"] = ratio
		findings[v+"/overhead_limit"] = maxRatio
		status := "ok"
		if ratio > maxRatio {
			status = fmt.Sprintf("FAIL (limit %g)", maxRatio)
			bad = true
		}
		fmt.Printf("%s: off=%.0fns/op on=%.0fns/op overhead=%.2fx %s\n", v, offNs, onNs, ratio, status)
	}

	if err := writeRecord(out, "ci_overhead", "CI telemetry-overhead gate",
		fmt.Sprintf("telemetry-on churn stays within %gx of telemetry-off per variant", maxRatio),
		findings); err != nil {
		return fail(err)
	}
	if bad {
		fmt.Fprintln(os.Stderr, "benchgate: telemetry overhead regression (or missing data) — see above")
		return 1
	}
	return 0
}

// runBatch is the -batch mode: the batch benchmark family holds a
// perOp lane (the sequential Insert/Delete loop) and a batch64 lane
// (the same ops through Apply in 64-op groups); the speedup
// perOpNs/batch64Ns must clear minSpeedup. Each lane's ns/op is the
// minimum across -count repeats (benchfmt.MinNsPerOp), so one noisy
// sample cannot flip the gate either way; a missing lane fails it.
func runBatch(results []benchfmt.Result, family string, minSpeedup float64, out string) int {
	perOp, err1 := benchfmt.MinNsPerOp(results, family+"/perOp")
	batch64, err2 := benchfmt.MinNsPerOp(results, family+"/batch64")
	if err1 != nil || err2 != nil || batch64 <= 0 {
		fmt.Fprintf(os.Stderr, "benchgate: missing %s lane data (%v, %v) — a renamed benchmark must not pass the gate\n",
			family, err1, err2)
		return 1
	}
	speedup := perOp / batch64
	findings := map[string]float64{
		"per_op_ns_per_op":  perOp,
		"batch64_ns_per_op": batch64,
		"speedup":           speedup,
		"speedup_min":       minSpeedup,
	}
	bad := false
	status := "ok"
	if speedup < minSpeedup {
		status = fmt.Sprintf("FAIL (min %g)", minSpeedup)
		bad = true
	}
	fmt.Printf("batch: perOp=%.0fns/op batch64=%.0fns/op speedup=%.2fx %s\n",
		perOp, batch64, speedup, status)

	if err := writeRecord(out, "ci_batch", "CI batched-submission gate",
		fmt.Sprintf("64-op batches through Apply cost <= 1/%gx of the same churn submitted per op", minSpeedup),
		findings); err != nil {
		return fail(err)
	}
	if bad {
		fmt.Fprintln(os.Stderr, "benchgate: batch speedup regression (or missing data) — see above")
		return 1
	}
	return 0
}

// runBytes is the -bytes mode: the backend benchmark family holds
// <core>/metered and <core>/heap twins over an identical churn stream;
// every core's heap/metered ns/op ratio must stay within maxRatio —
// the price of physically memmoving payload bytes instead of counting
// them — and a core with only one half of the pair fails the gate.
func runBytes(results []benchfmt.Result, family string, maxRatio float64, out string) int {
	prefix := family + "/"
	cores := map[string]bool{}
	for _, r := range results {
		if !strings.HasPrefix(r.Name, prefix) {
			continue
		}
		if c, _, ok := strings.Cut(strings.TrimPrefix(r.Name, prefix), "/"); ok {
			cores[c] = true
		}
	}
	if len(cores) == 0 {
		return fail(fmt.Errorf("no %s/* results in the input", family))
	}
	order := make([]string, 0, len(cores))
	for c := range cores {
		order = append(order, c)
	}
	sort.Strings(order)

	findings := map[string]float64{}
	bad := false
	for _, c := range order {
		meteredNs, err1 := benchfmt.NsPerOp(results, prefix+c+"/metered")
		heapNs, err2 := benchfmt.NsPerOp(results, prefix+c+"/heap")
		if err1 != nil || err2 != nil || meteredNs <= 0 {
			fmt.Fprintf(os.Stderr, "benchgate: incomplete metered/heap pair for %s (%v, %v)\n", c, err1, err2)
			bad = true
			continue
		}
		ratio := heapNs / meteredNs
		findings[c+"/ns_per_op_metered"] = meteredNs
		findings[c+"/ns_per_op_heap"] = heapNs
		findings[c+"/bytes_ratio"] = ratio
		findings[c+"/bytes_limit"] = maxRatio
		status := "ok"
		if ratio > maxRatio {
			status = fmt.Sprintf("FAIL (limit %g)", maxRatio)
			bad = true
		}
		fmt.Printf("%s: metered=%.0fns/op heap=%.0fns/op cost=%.2fx %s\n", c, meteredNs, heapNs, ratio, status)
	}

	if err := writeRecord(out, "ci_bytes", "CI real-backend cost gate",
		fmt.Sprintf("churn on the heap arena (real memmoves) stays within %gx of the metered backend per core", maxRatio),
		findings); err != nil {
		return fail(err)
	}
	if bad {
		fmt.Fprintln(os.Stderr, "benchgate: real-backend cost regression (or missing data) — see above")
		return 1
	}
	return 0
}

// runDurable is the -durable mode: the durable churn family holds a
// heap lane (in-memory arena, real memmoves) and a wal lane (the same
// churn in durable mode — WAL appends per placement, arena sync plus
// group-fsync per checkpoint); their ns/op ratio must stay within
// maxRatio. The replay result is one full wal.Open rebuild of a
// 1e5-record log and must finish within maxReplayMs. Either half
// missing fails the gate.
func runDurable(results []benchfmt.Result, family, replay string, maxRatio, maxReplayMs float64, out string) int {
	findings := map[string]float64{}
	bad := false

	heapNs, err1 := benchfmt.NsPerOp(results, family+"/heap")
	walNs, err2 := benchfmt.NsPerOp(results, family+"/wal")
	if err1 != nil || err2 != nil || heapNs <= 0 {
		fmt.Fprintf(os.Stderr, "benchgate: incomplete heap/wal pair for %s (%v, %v)\n", family, err1, err2)
		bad = true
	} else {
		ratio := walNs / heapNs
		findings["churn/ns_per_op_heap"] = heapNs
		findings["churn/ns_per_op_wal"] = walNs
		findings["churn/durable_ratio"] = ratio
		findings["churn/durable_limit"] = maxRatio
		status := "ok"
		if ratio > maxRatio {
			status = fmt.Sprintf("FAIL (limit %g)", maxRatio)
			bad = true
		}
		fmt.Printf("durable churn: heap=%.0fns/op wal=%.0fns/op cost=%.2fx %s\n", heapNs, walNs, ratio, status)
	}

	replayNs, err := benchfmt.NsPerOp(results, replay)
	if err != nil || replayNs <= 0 {
		fmt.Fprintf(os.Stderr, "benchgate: missing %s result (%v) — a renamed benchmark must not pass the gate\n", replay, err)
		bad = true
	} else {
		ms := replayNs / 1e6
		findings["replay/ms_per_100k_ops"] = ms
		findings["replay/ms_limit"] = maxReplayMs
		status := "ok"
		if ms > maxReplayMs {
			status = fmt.Sprintf("FAIL (limit %gms)", maxReplayMs)
			bad = true
		}
		fmt.Printf("wal replay: %.1fms per 1e5 logged ops %s\n", ms, status)
	}

	if err := writeRecord(out, "ci_durable", "CI durability gate",
		fmt.Sprintf("durable churn stays within %gx of the heap backend; 1e5-record WAL replay under %gms", maxRatio, maxReplayMs),
		findings); err != nil {
		return fail(err)
	}
	if bad {
		fmt.Fprintln(os.Stderr, "benchgate: durability regression (or missing data) — see above")
		return 1
	}
	return 0
}

// defaultOut resolves the -out flag: empty takes the mode default, the
// literal "none" skips the record (writeRecord treats "" as skip).
func defaultOut(out, def string) string {
	switch out {
	case "":
		return def
	case "none":
		return ""
	default:
		return out
	}
}

// writeRecord persists one trajectory record; out == "" skips.
func writeRecord(out, id, title, claim string, findings map[string]float64) error {
	if out == "" {
		return nil
	}
	manifest := benchfmt.CurrentManifest()
	rec := benchfmt.Record{
		ID:        id,
		Title:     title,
		Claim:     claim,
		Timestamp: time.Now().UTC(),
		GoVersion: manifest.GoVersion,
		Findings:  findings,
		Manifest:  manifest,
	}
	buf, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	if dir := filepath.Dir(out); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	if err := os.WriteFile(out, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "benchgate: wrote %s\n", out)
	return nil
}

// parseGates parses "a=4,b=3" into limits, preserving order for output.
func parseGates(spec string) (map[string]float64, []string, error) {
	limits := map[string]float64{}
	var order []string
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, val, ok := strings.Cut(part, "=")
		if !ok {
			return nil, nil, fmt.Errorf("benchgate: bad gate %q (want variant=limit)", part)
		}
		limit, err := strconv.ParseFloat(val, 64)
		if err != nil || limit <= 0 {
			return nil, nil, fmt.Errorf("benchgate: bad gate limit %q", part)
		}
		limits[name] = limit
		order = append(order, name)
	}
	if len(order) == 0 {
		return nil, nil, fmt.Errorf("benchgate: no gates given")
	}
	return limits, order, nil
}

func fail(err error) int {
	fmt.Fprintln(os.Stderr, "benchgate:", err)
	return 1
}
