// Command benchgate is the CI benchmark-regression gate. It parses `go
// test -bench` output (a file or stdin), checks the churn-scaling ratios
// against per-variant limits, and writes a BENCH_ci_churn.json trajectory
// record (schema: internal/benchfmt) so every CI run leaves a comparable
// artifact instead of a log line that disappears with the job.
//
// Usage:
//
//	go test -run '^$' -bench BenchmarkChurnScaling -benchtime 20000x . | \
//	    benchgate [-in -] [-out BENCH_ci_churn.json]
//	    [-bench BenchmarkChurnScaling] [-small 100000] [-big 1000000]
//	    [-gates amortized=4,checkpointed=4,deamortized=3]
//
// The gate fails (exit 1) when a variant's per-op time at the big size
// exceeds limit × its time at the small size, or when expected results
// are missing — a silent benchmark rename must not pass the gate.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"realloc/internal/benchfmt"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		in    = flag.String("in", "-", "bench output to read (- for stdin)")
		out   = flag.String("out", "BENCH_ci_churn.json", "trajectory record to write (empty to skip)")
		bench = flag.String("bench", "BenchmarkChurnScaling", "benchmark family to gate")
		small = flag.Int64("small", 100_000, "small live-cell size")
		big   = flag.Int64("big", 1_000_000, "big live-cell size")
		gates = flag.String("gates", "amortized=4,checkpointed=4,deamortized=3",
			"comma-separated variant=maxRatio limits")
	)
	flag.Parse()

	limits, order, err := parseGates(*gates)
	if err != nil {
		return fail(err)
	}
	var src io.Reader = os.Stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			return fail(err)
		}
		defer f.Close()
		src = f
	}
	results, err := benchfmt.ParseBench(src)
	if err != nil {
		return fail(err)
	}

	findings := map[string]float64{}
	bad := false
	for _, variant := range order {
		limit := limits[variant]
		smallNs, err1 := benchfmt.NsPerOp(results, fmt.Sprintf("%s/%s/cells=%d", *bench, variant, *small))
		bigNs, err2 := benchfmt.NsPerOp(results, fmt.Sprintf("%s/%s/cells=%d", *bench, variant, *big))
		if err1 != nil || err2 != nil || smallNs <= 0 {
			fmt.Fprintf(os.Stderr, "benchgate: missing benchmark data for %s (%v, %v)\n", variant, err1, err2)
			bad = true
			continue
		}
		ratio := bigNs / smallNs
		findings[variant+"_ns_per_op_small"] = smallNs
		findings[variant+"_ns_per_op_big"] = bigNs
		findings[variant+"_ratio"] = ratio
		findings[variant+"_ratio_limit"] = limit
		status := "ok"
		if ratio > limit {
			status = fmt.Sprintf("FAIL (limit %g)", limit)
			bad = true
		}
		fmt.Printf("%s: %de5-cells=%.0fns/op %de5-cells=%.0fns/op ratio=%.2f %s\n",
			variant, *small/100_000, smallNs, *big/100_000, bigNs, ratio, status)
	}

	if *out != "" {
		manifest := benchfmt.CurrentManifest()
		rec := benchfmt.Record{
			ID:        "ci_churn",
			Title:     "CI churn-scaling gate",
			Claim:     fmt.Sprintf("per-op churn cost stays near-flat from %d to %d live cells", *small, *big),
			Timestamp: time.Now().UTC(),
			GoVersion: manifest.GoVersion,
			Findings:  findings,
			Manifest:  manifest,
		}
		buf, err := json.MarshalIndent(rec, "", "  ")
		if err != nil {
			return fail(err)
		}
		if dir := filepath.Dir(*out); dir != "." {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				return fail(err)
			}
		}
		if err := os.WriteFile(*out, append(buf, '\n'), 0o644); err != nil {
			return fail(err)
		}
		fmt.Fprintf(os.Stderr, "benchgate: wrote %s\n", *out)
	}
	if bad {
		fmt.Fprintln(os.Stderr, "benchgate: ratio regression (or missing data) — see above")
		return 1
	}
	return 0
}

// parseGates parses "a=4,b=3" into limits, preserving order for output.
func parseGates(spec string) (map[string]float64, []string, error) {
	limits := map[string]float64{}
	var order []string
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, val, ok := strings.Cut(part, "=")
		if !ok {
			return nil, nil, fmt.Errorf("benchgate: bad gate %q (want variant=limit)", part)
		}
		limit, err := strconv.ParseFloat(val, 64)
		if err != nil || limit <= 0 {
			return nil, nil, fmt.Errorf("benchgate: bad gate limit %q", part)
		}
		limits[name] = limit
		order = append(order, name)
	}
	if len(order) == 0 {
		return nil, nil, fmt.Errorf("benchgate: no gates given")
	}
	return limits, order, nil
}

func fail(err error) int {
	fmt.Fprintln(os.Stderr, "benchgate:", err)
	return 1
}
