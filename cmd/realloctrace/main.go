// Command realloctrace captures and replays request traces.
//
// Usage:
//
//	realloctrace gen -workload churn|dbtrace|sawtooth [-ops N] [-seed N]
//	    emit a generated trace to stdout in the text format
//	    ("+ id size" / "- id size", one op per line)
//
//	realloctrace replay [-allocator amortized|checkpointed|deamortized|
//	    firstfit|bestfit|buddy|logcompact|classgap] [-eps 0.25] < trace
//	    replay a trace from stdin and report footprint and cost metrics
//
// Capture a trace from your own system in the same format to evaluate how
// cost-oblivious reallocation would behave on your workload.
package main

import (
	"flag"
	"fmt"
	"os"

	"realloc/internal/baseline"
	"realloc/internal/core"
	"realloc/internal/cost"
	"realloc/internal/trace"
	"realloc/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "gen":
		genCmd(os.Args[2:])
	case "replay":
		replayCmd(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: realloctrace gen|replay [flags]")
	os.Exit(2)
}

func genCmd(args []string) {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	kind := fs.String("workload", "churn", "churn|dbtrace|sawtooth")
	ops := fs.Int("ops", 10000, "number of requests")
	seed := fs.Uint64("seed", 1, "generator seed")
	volume := fs.Int64("volume", 50000, "target live volume")
	_ = fs.Parse(args)

	var s workload.Stream
	switch *kind {
	case "churn":
		s = &workload.Churn{Seed: *seed, Sizes: workload.Pareto{Min: 1, Max: 1024, Alpha: 1.2}, TargetVolume: *volume}
	case "dbtrace":
		s = &workload.DBTrace{Seed: *seed, Blocks: int(*volume / 128), MinBlock: 4, MaxBlock: 512}
	case "sawtooth":
		s = &workload.Sawtooth{Seed: *seed, Sizes: workload.Uniform{Min: 1, Max: 256}, Low: *volume / 4, High: *volume}
	default:
		fmt.Fprintf(os.Stderr, "realloctrace: unknown workload %q\n", *kind)
		os.Exit(2)
	}
	opsList := workload.Collect(s, *ops)
	if err := workload.WriteOps(os.Stdout, opsList); err != nil {
		fmt.Fprintln(os.Stderr, "realloctrace:", err)
		os.Exit(1)
	}
}

func replayCmd(args []string) {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	alloc := fs.String("allocator", "amortized", "amortized|checkpointed|deamortized|firstfit|bestfit|buddy|logcompact|classgap")
	eps := fs.Float64("eps", 0.25, "footprint slack (reallocator variants)")
	_ = fs.Parse(args)

	ops, err := workload.ReadOps(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "realloctrace:", err)
		os.Exit(1)
	}
	if _, err := workload.Validate(ops); err != nil {
		fmt.Fprintln(os.Stderr, "realloctrace: invalid trace:", err)
		os.Exit(1)
	}

	m := trace.NewMetrics(append(cost.StandardFamily(), cost.MediaFamily()...)...)
	var target workload.Target
	switch *alloc {
	case "amortized", "checkpointed", "deamortized":
		variant := map[string]core.Variant{
			"amortized": core.Amortized, "checkpointed": core.Checkpointed, "deamortized": core.Deamortized,
		}[*alloc]
		r, err := core.New(core.Config{Epsilon: *eps, Variant: variant, Recorder: m})
		if err != nil {
			fmt.Fprintln(os.Stderr, "realloctrace:", err)
			os.Exit(1)
		}
		defer func() { _ = r.Drain() }()
		target = r
	case "firstfit":
		target = baseline.NewFirstFit(m)
	case "bestfit":
		target = baseline.NewBestFit(m)
	case "buddy":
		target = baseline.NewBuddy(m)
	case "logcompact":
		target = baseline.NewLogCompact(m)
	case "classgap":
		target = baseline.NewClassGap(m)
	default:
		fmt.Fprintf(os.Stderr, "realloctrace: unknown allocator %q\n", *alloc)
		os.Exit(2)
	}
	n, err := workload.Drive(target, workload.Replay("stdin", ops), 0)
	if err != nil {
		fmt.Fprintln(os.Stderr, "realloctrace:", err)
		os.Exit(1)
	}
	if r, ok := target.(*core.Reallocator); ok {
		if err := r.Drain(); err != nil {
			fmt.Fprintln(os.Stderr, "realloctrace:", err)
			os.Exit(1)
		}
	}

	fmt.Printf("replayed %d requests against %s\n\n", n, *alloc)
	fmt.Printf("final volume:      %d\n", m.FinalVolume)
	fmt.Printf("final footprint:   %d\n", m.FinalFootprint)
	fmt.Printf("max footprint/V:   %.4f (steady)\n", m.MaxRatioSteady)
	fmt.Printf("moves:             %d (volume %d)\n", m.MovesTotal, m.MovedVolume)
	fmt.Printf("flushes:           %d, checkpoints: %d\n\n", m.Flushes, m.CheckpointsTotal)
	fmt.Println("reallocation cost / allocation cost per cost model:")
	for _, l := range m.Meter.Lines() {
		fmt.Printf("  %-16s %8.3f   (worst single request: %.1f)\n", l.Func, l.Ratio, l.MaxOpCost)
	}
}
