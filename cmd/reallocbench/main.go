// Command reallocbench regenerates the experiment suite of EXPERIMENTS.md:
// every table and figure validating the paper's claims.
//
// Usage:
//
//	reallocbench [-e E1|E2|...|E14|all] [-seed N] [-ops N] [-quick] [-list]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"realloc/internal/exp"
)

func main() {
	var (
		which = flag.String("e", "all", "experiment to run (E1..E14 or 'all')")
		seed  = flag.Uint64("seed", 1, "workload seed")
		ops   = flag.Int("ops", 0, "request budget per run (0 = experiment default)")
		quick = flag.Bool("quick", false, "reduced scale for a fast pass")
		list  = flag.Bool("list", false, "list experiments and exit")
	)
	flag.Parse()

	if *list {
		for _, e := range exp.All() {
			fmt.Printf("%-4s %s\n     %s\n", e.ID, e.Title, e.Claim)
		}
		return
	}

	cfg := exp.Config{Seed: *seed, Ops: *ops, Quick: *quick}
	if strings.EqualFold(*which, "all") {
		if err := exp.RunAll(cfg, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "reallocbench:", err)
			os.Exit(1)
		}
		return
	}
	e, ok := exp.ByID(*which)
	if !ok {
		fmt.Fprintf(os.Stderr, "reallocbench: unknown experiment %q (try -list)\n", *which)
		os.Exit(2)
	}
	res, err := e.Run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "reallocbench:", err)
		os.Exit(1)
	}
	fmt.Printf("== %s: %s ==\nClaim: %s\n\n%s\n", e.ID, e.Title, e.Claim, res.Text)
}
