// Command reallocbench regenerates the experiment suite of EXPERIMENTS.md:
// every table and figure validating the paper's claims.
//
// Usage:
//
//	reallocbench [-e E1|E2|...|E17|all] [-seed N] [-ops N] [-quick] [-list]
//	            [-core pods14|fcs|auto] [-backend metered|heap|mmap]
//	            [-cpuprofile FILE] [-memprofile FILE]
//	            [-json] [-outdir DIR] [-telemetry] [-http ADDR]
//
// With -json, each experiment additionally writes a machine-readable
// BENCH_<id>.json (into -outdir, default ".") carrying its findings map,
// wall-clock duration, and run configuration, so successive runs
// accumulate a perf trajectory that tooling can diff.
//
// With -telemetry, the facade-level experiments (E13–E15) run with the
// runtime telemetry layer armed and embed its percentile summaries
// (telemetry/<metric>/{p50,p95,p99,max}_*) in their findings — and
// hence in BENCH_<id>.json under -json. With -http ADDR (which implies
// -telemetry), the currently running experiment's registry is also
// served live: Prometheus text on ADDR/metrics, expvar on
// /debug/vars, and the pprof surface on /debug/pprof — e.g.
//
//	reallocbench -e E14 -telemetry -http :6060
//
// With -durable, the experiment suite is skipped and a durability lane
// runs instead: a block-churn workload against a durable store (WAL +
// file-backed arena) in -wal DIR (a temp directory when empty), which
// is then closed and recovered, printing churn throughput, checkpoint
// counts, WAL fsync percentiles, and cold-start replay time:
//
//	reallocbench -durable [-wal DIR] [-ops 100000] [-seed 1]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand/v2"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync/atomic"
	"time"

	"realloc"
	"realloc/internal/benchfmt"
	"realloc/internal/exp"
	"realloc/internal/telemetry"
)

func main() {
	os.Exit(run())
}

// run owns the profiling lifecycle so every exit path flushes profiles:
// os.Exit in main would skip the deferred StopCPUProfile/heap write and
// corrupt the very artifacts a profiled run exists to produce.
func run() int {
	var (
		which      = flag.String("e", "all", "experiment to run (E1..E17 or 'all')")
		seed       = flag.Uint64("seed", 1, "workload seed")
		ops        = flag.Int("ops", 0, "request budget per run (0 = experiment default)")
		quick      = flag.Bool("quick", false, "reduced scale for a fast pass")
		coreName   = flag.String("core", "", "restrict cross-core experiments to one core (pods14, fcs, auto; empty = all)")
		backend    = flag.String("backend", "", "restrict cross-backend experiments to one payload backend (metered, heap, mmap; empty = metered+heap)")
		list       = flag.Bool("list", false, "list experiments and exit")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to `file`")
		memprofile = flag.String("memprofile", "", "write an allocation profile to `file`")
		jsonOut    = flag.Bool("json", false, "write a BENCH_<id>.json per experiment run")
		outdir     = flag.String("outdir", ".", "directory for -json output files")
		telem      = flag.Bool("telemetry", false, "arm the runtime telemetry layer on facade experiments and embed percentile summaries in findings")
		httpAddr   = flag.String("http", "", "serve live /metrics, /debug/vars and /debug/pprof on this `address` (implies -telemetry)")
		durable    = flag.Bool("durable", false, "run the durability lane (WAL + file-backed arena churn, then recovery) instead of the experiment suite")
		walDir     = flag.String("wal", "", "media `directory` for the -durable lane (empty: a fresh temp directory, removed afterwards)")
	)
	flag.Parse()
	if *httpAddr != "" {
		*telem = true
	}

	if *durable {
		return runDurableLane(*walDir, *seed, *ops)
	}

	if *list {
		for _, e := range exp.All() {
			fmt.Printf("%-4s %s\n     %s\n", e.ID, e.Title, e.Claim)
		}
		return 0
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return fail(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fail(err)
		}
		defer pprof.StopCPUProfile()
	}
	defer func() {
		if *memprofile == "" {
			return
		}
		f, err := os.Create(*memprofile)
		if err != nil {
			fail(err)
			return
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fail(err)
		}
	}()

	cfg := exp.Config{Seed: *seed, Ops: *ops, Quick: *quick, Core: *coreName, Backend: *backend}
	// Each experiment records into a fresh registry so its findings (and
	// the live HTTP view) describe that run alone; liveReg is what the
	// debug server reads, swapped atomically as experiments advance.
	var liveReg atomic.Pointer[telemetry.Registry]
	if *telem {
		liveReg.Store(telemetry.NewRegistry())
	}
	if *httpAddr != "" {
		go func() {
			err := http.ListenAndServe(*httpAddr, http.HandlerFunc(
				func(w http.ResponseWriter, r *http.Request) {
					telemetry.NewServeMux(liveReg.Load()).ServeHTTP(w, r)
				}))
			fmt.Fprintln(os.Stderr, "reallocbench: http:", err)
		}()
		fmt.Fprintf(os.Stderr, "reallocbench: serving /metrics, /debug/vars, /debug/pprof on %s\n", *httpAddr)
	}
	var targets []exp.Experiment
	if strings.EqualFold(*which, "all") {
		targets = exp.All()
	} else {
		e, ok := exp.ByID(*which)
		if !ok {
			fmt.Fprintf(os.Stderr, "reallocbench: unknown experiment %q (try -list)\n", *which)
			return 2
		}
		targets = []exp.Experiment{e}
	}
	// One manifest per process: every BENCH_<id>.json of this run carries
	// the same git SHA, Go version, and GOMAXPROCS, so trajectory files
	// from different PRs are comparable (and same-run files group).
	manifest := benchfmt.CurrentManifest()
	for _, e := range targets {
		if *telem {
			reg := telemetry.NewRegistry()
			liveReg.Store(reg)
			cfg.Telemetry = reg
		}
		start := time.Now()
		res, err := e.Run(cfg)
		if err != nil {
			return fail(fmt.Errorf("%s: %w", e.ID, err))
		}
		if cfg.Telemetry != nil && res.Findings != nil {
			cfg.Telemetry.Snapshot().AppendFindings(res.Findings, "telemetry/")
		}
		fmt.Printf("== %s: %s ==\nClaim: %s\n\n%s\n", e.ID, e.Title, e.Claim, res.Text)
		if !*jsonOut {
			continue
		}
		rec := benchfmt.Record{
			ID: e.ID, Title: e.Title, Claim: e.Claim,
			Seed: *seed, Ops: *ops, Core: *coreName, Backend: *backend, Quick: *quick,
			Timestamp: start.UTC(), GoVersion: manifest.GoVersion,
			Seconds:  time.Since(start).Seconds(),
			Findings: res.Findings,
			Manifest: manifest,
		}
		buf, err := json.MarshalIndent(rec, "", "  ")
		if err != nil {
			return fail(err)
		}
		path := filepath.Join(*outdir, "BENCH_"+e.ID+".json")
		if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
			return fail(err)
		}
		fmt.Fprintf(os.Stderr, "reallocbench: wrote %s\n", path)
	}
	return 0
}

// runDurableLane is the -durable mode: churn a durable block store in
// dir (put/update/drop with periodic checkpoints), close it, and time
// the cold-start recovery — the end-to-end cost a database pays for the
// checkpoint rule's durability contract.
func runDurableLane(dir string, seed uint64, ops int) int {
	if ops <= 0 {
		ops = 100_000
	}
	if dir == "" {
		tmp, err := os.MkdirTemp("", "reallocbench-wal-*")
		if err != nil {
			return fail(err)
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	}
	reg := telemetry.NewRegistry()
	s, err := realloc.NewBlockStore(realloc.BlockStoreDir(dir), realloc.BlockStoreTelemetry(reg))
	if err != nil {
		return fail(err)
	}

	rng := rand.New(rand.NewPCG(seed, 0xd07ab))
	payload := make([]byte, 256)
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	var names []string
	next := 0
	start := time.Now()
	for op := 0; op < ops; op++ {
		var err error
		switch k := rng.IntN(10); {
		case k < 5 || len(names) == 0:
			name := fmt.Sprintf("blk%08d", next)
			next++
			if err = s.Put(name, payload[:16+rng.IntN(240)]); err == nil {
				names = append(names, name)
			}
		case k < 7:
			err = s.Update(names[rng.IntN(len(names))], int64(16+rng.IntN(240)))
		case k < 8:
			j := rng.IntN(len(names))
			if err = s.Drop(names[j]); err == nil {
				names[j] = names[len(names)-1]
				names = names[:len(names)-1]
			}
		default:
			s.Checkpoint()
			err = s.Err()
		}
		if err != nil {
			return fail(fmt.Errorf("durable churn op %d: %w", op, err))
		}
	}
	s.Checkpoint()
	if err := s.Err(); err != nil {
		return fail(err)
	}
	churn := time.Since(start)
	live, vol := s.Len(), s.Volume()
	ckpts := s.Checkpoints()
	if err := s.Close(); err != nil {
		return fail(err)
	}

	t0 := time.Now()
	s2, rep, err := realloc.OpenBlockStore(realloc.BlockStoreDir(dir), realloc.BlockStoreTelemetry(reg))
	if err != nil {
		return fail(fmt.Errorf("recovery: %w", err))
	}
	replay := time.Since(t0)
	if err := s2.CheckInvariants(); err != nil {
		return fail(fmt.Errorf("invariants after recovery: %w", err))
	}
	_ = s2.Close()

	snap := reg.Snapshot()
	fmt.Printf("== durable lane: %d ops in %s ==\n", ops, dir)
	fmt.Printf("churn:     %v (%.0f ops/s), %d live blocks, %d cells live volume\n",
		churn.Round(time.Millisecond), float64(ops)/churn.Seconds(), live, vol)
	fmt.Printf("ckpts:     %d (explicit + reallocator-forced), wal fsyncs: %d (p50=%v p99=%v)\n",
		ckpts, snap.WALFsync.Count,
		time.Duration(snap.WALFsync.Quantile(0.50)), time.Duration(snap.WALFsync.Quantile(0.99)))
	fmt.Printf("recovery:  %d blocks to checkpoint %d in %v (wal tail truncated: %d records)\n",
		rep.Recovered, rep.Seq, replay.Round(time.Microsecond), rep.WALTail)
	return 0
}

func fail(err error) int {
	fmt.Fprintln(os.Stderr, "reallocbench:", err)
	return 1
}
