// Command reallocviz renders the paper's figures and live layout
// animations as ASCII.
//
// Usage:
//
//	reallocviz fig1|fig2|fig3       reproduce a figure from the paper
//	reallocviz trace [-ops N]       animate the layout under random churn
//	reallocviz telemetry [-ops N]   churn a telemetry-armed facade and render
//	                                its latency/flush histograms + flush spans
package main

import (
	"flag"
	"fmt"
	"os"

	"realloc/internal/core"
	"realloc/internal/exp"
	"realloc/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "fig1":
		out, _, _, err := exp.Figure1()
		emit(out, err)
	case "fig2":
		out, err := exp.Figure2()
		emit(out, err)
	case "fig3":
		out, err := exp.Figure3()
		emit(out, err)
	case "trace":
		fs := flag.NewFlagSet("trace", flag.ExitOnError)
		ops := fs.Int("ops", 400, "number of churn requests")
		every := fs.Int("every", 40, "render the layout every N requests")
		seed := fs.Uint64("seed", 7, "workload seed")
		eps := fs.Float64("eps", 0.5, "footprint slack")
		_ = fs.Parse(os.Args[2:])
		if err := traceCmd(*ops, *every, *seed, *eps); err != nil {
			fmt.Fprintln(os.Stderr, "reallocviz:", err)
			os.Exit(1)
		}
	case "telemetry":
		fs := flag.NewFlagSet("telemetry", flag.ExitOnError)
		ops := fs.Int("ops", 50000, "number of churn requests")
		shards := fs.Int("shards", 1, "shard count (>1 uses the sharded facade)")
		seed := fs.Uint64("seed", 7, "workload seed")
		eps := fs.Float64("eps", 0.25, "footprint slack")
		tail := fs.Int("spans", 20, "flush spans to tabulate (newest first cut)")
		_ = fs.Parse(os.Args[2:])
		if err := telemetryCmd(*ops, *shards, *seed, *eps, *tail); err != nil {
			fmt.Fprintln(os.Stderr, "reallocviz:", err)
			os.Exit(1)
		}
	default:
		usage()
	}
}

func emit(out string, err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "reallocviz:", err)
		os.Exit(1)
	}
	fmt.Print(out)
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: reallocviz fig1|fig2|fig3|trace|telemetry [flags]")
	os.Exit(2)
}

func traceCmd(ops, every int, seed uint64, eps float64) error {
	r, err := core.New(core.Config{Epsilon: eps, Variant: core.Amortized})
	if err != nil {
		return err
	}
	churn := &workload.Churn{
		Seed:         seed,
		Sizes:        workload.Pareto{Min: 1, Max: 128, Alpha: 1.3},
		TargetVolume: 2000,
	}
	for i := 1; i <= ops; i++ {
		op, ok := churn.Next()
		if !ok {
			break
		}
		if op.Insert {
			err = r.Insert(op.ID, op.Size)
		} else {
			err = r.Delete(op.ID)
		}
		if err != nil {
			return fmt.Errorf("op %d: %w", i, err)
		}
		if i%every == 0 {
			fmt.Printf("after %4d requests: V=%d footprint=%d (%.3fx)\n",
				i, r.Volume(), r.Footprint(), float64(r.Footprint())/float64(r.Volume()))
			fmt.Print(exp.RenderLayout(r, 72))
			fmt.Println()
		}
	}
	return nil
}
