package main

import (
	"fmt"
	"strings"
	"time"

	"realloc"
	"realloc/internal/telemetry"
	"realloc/internal/workload"
)

// flushSpan is one EventFlushSpan captured by the observer: the
// telemetry layer replays every completed flush as (chunks, moved
// volume, stall ns, active ns) on the emitting shard.
type flushSpan struct {
	shard  int
	chunks int64
	moved  int64
	stall  int64
	active int64
}

// churnTarget is the facade surface the telemetry view drives; both
// realloc.New and realloc.NewSharded products satisfy it.
type churnTarget interface {
	Insert(id int64, size int64) error
	Delete(id int64) error
	Drain() error
}

// telemetryCmd churns a telemetry-armed facade and renders what the
// registry saw: one ASCII histogram per populated metric plus the tail
// of the flush-span stream.
func telemetryCmd(ops, shards int, seed uint64, eps float64, spanTail int) error {
	reg := telemetry.NewRegistry()
	var spans []flushSpan
	obs := func(e realloc.Event) {
		if e.Kind == realloc.EventFlushSpan {
			spans = append(spans, flushSpan{
				shard: e.Shard, chunks: e.ID, moved: e.Size, stall: e.From, active: e.To,
			})
		}
	}
	opts := []realloc.Option{
		realloc.WithEpsilon(eps),
		realloc.WithTelemetry(reg),
		realloc.WithObserver(obs),
	}
	var (
		r   churnTarget
		err error
	)
	if shards > 1 {
		r, err = realloc.NewSharded(append(opts, realloc.WithShards(shards))...)
	} else {
		r, err = realloc.New(opts...)
	}
	if err != nil {
		return err
	}

	churn := &workload.Churn{
		Seed:         seed,
		Sizes:        workload.Pareto{Min: 1, Max: 128, Alpha: 1.3},
		TargetVolume: 20000,
	}
	for i := 1; i <= ops; i++ {
		op, ok := churn.Next()
		if !ok {
			break
		}
		if op.Insert {
			err = r.Insert(int64(op.ID), op.Size)
		} else {
			err = r.Delete(int64(op.ID))
		}
		if err != nil {
			return fmt.Errorf("op %d: %w", i, err)
		}
	}
	if err := r.Drain(); err != nil {
		return err
	}

	snap := reg.Snapshot()
	fmt.Printf("%d churn ops, %d shard(s), eps=%g — registry aggregate:\n\n", ops, reg.NumShards(), eps)
	for _, h := range []struct {
		title string
		s     *telemetry.HistSnapshot
		nanos bool
	}{
		{"insert latency", &snap.InsertLatency, true},
		{"delete latency", &snap.DeleteLatency, true},
		{"flush duration (active)", &snap.FlushDuration, true},
		{"flush stall (per stalled op)", &snap.FlushStall, true},
		{"flush moved volume (cells)", &snap.FlushMoved, false},
		{"flush chunk size (cells)", &snap.FlushChunk, false},
		{"migrate latency", &snap.MigrateLatency, true},
		{"wal fsync latency", &snap.WALFsync, true},
		{"recovery duration", &snap.Recovery, true},
	} {
		fmt.Print(renderHist(h.title, h.s, h.nanos, 40))
	}
	fmt.Printf("checkpoints: %d\n", snap.Checkpoints)
	fmt.Print(renderSpans(spans, spanTail))
	return nil
}

// renderHist draws one histogram as labeled log-bucket rows, bars
// scaled to the fullest bucket. Empty histograms render as one line so
// the reader sees which metrics the run never touched.
func renderHist(title string, s *telemetry.HistSnapshot, nanos bool, width int) string {
	val := func(v int64) string { return fmt.Sprintf("%d", v) }
	if nanos {
		val = func(v int64) string { return time.Duration(v).String() }
	}
	if s.Count == 0 {
		return fmt.Sprintf("== %s ==\n(no samples)\n\n", title)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", title)
	fmt.Fprintf(&b, "count %d  mean %s  p50 %s  p95 %s  p99 %s  max %s\n",
		s.Count, val(int64(s.Mean())),
		val(s.Quantile(0.50)), val(s.Quantile(0.95)), val(s.Quantile(0.99)), val(s.Max))
	first, last, peak := -1, 0, int64(0)
	for i, c := range s.Buckets {
		if c == 0 {
			continue
		}
		if first < 0 {
			first = i
		}
		last = i
		if c > peak {
			peak = c
		}
	}
	for i := first; i <= last; i++ {
		lo, hi := telemetry.BucketBounds(i)
		n := int(s.Buckets[i] * int64(width) / peak)
		if s.Buckets[i] > 0 && n == 0 {
			n = 1
		}
		fmt.Fprintf(&b, "  [%9s, %9s) %8d %s\n", val(lo), val(hi), s.Buckets[i], strings.Repeat("#", n))
	}
	b.WriteString("\n")
	return b.String()
}

// renderSpans tabulates the newest tail of the flush-span stream.
func renderSpans(spans []flushSpan, tail int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "== flush spans (%d total", len(spans))
	if len(spans) > tail {
		fmt.Fprintf(&b, ", last %d shown", tail)
		spans = spans[len(spans)-tail:]
	}
	b.WriteString(") ==\n")
	if len(spans) == 0 {
		return b.String()
	}
	fmt.Fprintf(&b, "%5s %7s %7s %12s %12s\n", "shard", "chunks", "moved", "stall", "active")
	for _, sp := range spans {
		fmt.Fprintf(&b, "%5d %7d %7d %12s %12s\n",
			sp.shard, sp.chunks, sp.moved,
			time.Duration(sp.stall).String(), time.Duration(sp.active).String())
	}
	return b.String()
}
