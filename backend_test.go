package realloc_test

import (
	"bytes"
	"fmt"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"testing"

	"realloc"
)

// driveChurn replays a deterministic insert/delete churn stream against
// any facade, returning the set of live IDs. Payload writers hook in via
// onInsert so differential runs and payload runs share one stream shape.
func driveChurn(t *testing.T, rng *rand.Rand, ops int,
	insert func(id, size int64) error, del func(id int64) error) map[int64]int64 {
	t.Helper()
	live := map[int64]int64{}
	ids := []int64{}
	var next int64 = 1
	for i := 0; i < ops; i++ {
		if rng.Float64() < 0.55 || len(ids) == 0 {
			id, size := next, 1+rng.Int64N(128)
			next++
			if err := insert(id, size); err != nil {
				t.Fatalf("insert %d: %v", id, err)
			}
			live[id] = size
			ids = append(ids, id)
		} else {
			j := rng.IntN(len(ids))
			id := ids[j]
			if err := del(id); err != nil {
				t.Fatalf("delete %d: %v", id, err)
			}
			delete(live, id)
			ids[j] = ids[len(ids)-1]
			ids = ids[:len(ids)-1]
		}
	}
	return live
}

// TestBackendDifferentialExtents replays the identical churn stream
// against a metered and a heap-backed reallocator for every variant and
// asserts the two runs are observationally identical: same event stream
// (kind, id, size, from, to) and same final extent for every live
// object. The backend exists below the placement policy; it must never
// change a placement decision.
func TestBackendDifferentialExtents(t *testing.T) {
	for _, v := range []realloc.Variant{realloc.Amortized, realloc.Checkpointed, realloc.Deamortized} {
		t.Run(v.String(), func(t *testing.T) {
			type ev struct {
				kind     realloc.EventKind
				id, size int64
				from, to int64
			}
			run := func(b realloc.Backend) ([]ev, map[int64]realloc.Extent) {
				var events []ev
				r, err := realloc.New(
					realloc.WithEpsilon(0.25),
					realloc.WithVariant(v),
					realloc.WithBackend(b),
					realloc.WithObserver(func(e realloc.Event) {
						events = append(events, ev{e.Kind, e.ID, e.Size, e.From, e.To})
					}),
				)
				if err != nil {
					t.Fatal(err)
				}
				rng := rand.New(rand.NewPCG(7, 0xd1f))
				live := driveChurn(t, rng, 4000, r.Insert, r.Delete)
				if err := r.Drain(); err != nil {
					t.Fatal(err)
				}
				exts := map[int64]realloc.Extent{}
				for id := range live {
					ext, ok := r.Extent(id)
					if !ok {
						t.Fatalf("backend %v: live id %d has no extent", b, id)
					}
					exts[id] = ext
				}
				return events, exts
			}
			mEvents, mExts := run(realloc.Metered)
			hEvents, hExts := run(realloc.HeapArena)
			if len(mEvents) != len(hEvents) {
				t.Fatalf("event count diverged: metered=%d heap=%d", len(mEvents), len(hEvents))
			}
			for i := range mEvents {
				if mEvents[i] != hEvents[i] {
					t.Fatalf("event %d diverged: metered=%+v heap=%+v", i, mEvents[i], hEvents[i])
				}
			}
			if len(mExts) != len(hExts) {
				t.Fatalf("live set diverged: metered=%d heap=%d", len(mExts), len(hExts))
			}
			for id, ext := range mExts {
				if hExts[id] != ext {
					t.Fatalf("id %d extent diverged: metered=%+v heap=%+v", id, ext, hExts[id])
				}
			}
		})
	}
}

// TestPayloadIntegrityAcrossFlushChunking is the payload property test:
// under both the amortized flush (one big rewrite) and the deamortized
// flush (work sliced across requests, with reads landing mid-flush),
// every object's bytes must read back exactly as written, at every
// probe point. Several seeds vary where the probes land relative to
// flush boundaries.
func TestPayloadIntegrityAcrossFlushChunking(t *testing.T) {
	pattern := func(id, size int64) []byte {
		p := make([]byte, size)
		for i := range p {
			p[i] = byte(uint64(id)*2654435761 + uint64(i))
		}
		return p
	}
	for _, v := range []realloc.Variant{realloc.Amortized, realloc.Deamortized} {
		for seed := uint64(1); seed <= 3; seed++ {
			t.Run(fmt.Sprintf("%s/seed%d", v, seed), func(t *testing.T) {
				r, err := realloc.New(
					realloc.WithEpsilon(0.25),
					realloc.WithVariant(v),
					realloc.WithBackend(realloc.HeapArena),
				)
				if err != nil {
					t.Fatal(err)
				}
				rng := rand.New(rand.NewPCG(seed, 0xfee1))
				verify := func(live map[int64]int64) {
					for id, size := range live {
						got, ok := r.Bytes(id)
						if !ok {
							t.Fatalf("id %d: no payload", id)
						}
						if !bytes.Equal(got, pattern(id, size)) {
							t.Fatalf("id %d: payload corrupted (size %d)", id, size)
						}
					}
				}
				live := map[int64]int64{}
				probe := 0
				insert := func(id, size int64) error {
					if err := r.Insert(id, size); err != nil {
						return err
					}
					if err := r.Write(id, pattern(id, size)); err != nil {
						return err
					}
					live[id] = size
					// Probe mid-stream every so often: with the
					// deamortized variant this lands inside sliced
					// flushes, with the amortized one right after
					// whole-flush rewrites.
					if probe++; probe%97 == 0 {
						verify(live)
					}
					return nil
				}
				del := func(id int64) error {
					delete(live, id)
					return r.Delete(id)
				}
				driveChurn(t, rng, 3000, insert, del)
				verify(live)
				if err := r.Drain(); err != nil {
					t.Fatal(err)
				}
				verify(live)
				if r.BytesMoved() == 0 {
					t.Fatal("no physical moves happened; the test exercised nothing")
				}
			})
		}
	}
}

// TestConcurrentReadDuringFlush hammers a heap-backed sharded
// reallocator with churn on one side and payload reads of stable
// objects on the other. Reads take only the shard read lock, flushes
// run under the shard write lock — so under -race this proves readers
// never observe a torn copy while the flusher memmoves extents.
func TestConcurrentReadDuringFlush(t *testing.T) {
	s, err := realloc.NewSharded(
		realloc.WithEpsilon(0.25),
		realloc.WithShards(4),
		realloc.WithBackend(realloc.HeapArena),
	)
	if err != nil {
		t.Fatal(err)
	}
	// Stable objects with known payloads, spread across shards.
	const stable = 64
	payload := func(id int64) []byte {
		p := make([]byte, 40+id%17)
		for i := range p {
			p[i] = byte(uint64(id)*31 + uint64(i))
		}
		return p
	}
	for id := int64(1); id <= stable; id++ {
		if err := s.Insert(id, int64(len(payload(id)))); err != nil {
			t.Fatal(err)
		}
		if err := s.Write(id, payload(id)); err != nil {
			t.Fatal(err)
		}
	}
	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(seed, 0xace))
			for !stop.Load() {
				id := 1 + rng.Int64N(stable)
				want := payload(id)
				got, ok := s.Bytes(id)
				if !ok {
					t.Errorf("id %d vanished", id)
					return
				}
				if !bytes.Equal(got, want) {
					t.Errorf("id %d: torn or corrupted read", id)
					return
				}
			}
		}(uint64(w + 1))
	}
	// Churn driver: scratch objects come and go around the stable ones,
	// forcing flushes (and physical moves) on every shard.
	rng := rand.New(rand.NewPCG(99, 0xb0b))
	var next int64 = stable + 1
	var ids []int64
	for i := 0; i < 30000; i++ {
		if rng.Float64() < 0.55 || len(ids) == 0 {
			id := next
			next++
			if err := s.Insert(id, 1+rng.Int64N(64)); err != nil {
				t.Fatal(err)
			}
			ids = append(ids, id)
		} else {
			j := rng.IntN(len(ids))
			if err := s.Delete(ids[j]); err != nil {
				t.Fatal(err)
			}
			ids[j] = ids[len(ids)-1]
			ids = ids[:len(ids)-1]
		}
	}
	stop.Store(true)
	wg.Wait()
	if err := s.Drain(); err != nil {
		t.Fatal(err)
	}
	if s.BytesMoved() == 0 {
		t.Fatal("churn produced no physical moves")
	}
	for id := int64(1); id <= stable; id++ {
		got, ok := s.Bytes(id)
		if !ok || !bytes.Equal(got, payload(id)) {
			t.Fatalf("id %d: payload corrupted after churn", id)
		}
	}
}
