package realloc

import (
	"errors"
	"sync/atomic"

	"realloc/internal/telemetry"
)

// ErrClosed is reported for every op submitted to the async pipeline
// after Close.
var ErrClosed = errors.New("realloc: reallocator closed")

// ErrAsyncDisabled is reported for every op passed to Submit on a
// reallocator built without WithAsync.
var ErrAsyncDisabled = errors.New("realloc: Submit requires WithAsync")

// asyncReq is one submitted op in flight through a shard's ring.
type asyncReq struct {
	op  Op
	tk  *Ticket
	idx int32
}

// Ticket tracks one Submit call's completion. Wait blocks until every
// op of the submitted batch has executed (or been rejected) and
// returns the per-op errors with Apply's semantics: nil when all ops
// succeeded, otherwise one slot per submitted op at its submission
// index.
type Ticket struct {
	errs   []error
	failed atomic.Bool
	// pending counts unsettled ops; the settle that drops it to zero
	// closes done.
	pending atomic.Int32
	done    chan struct{}
	// start is the submit-time telemetry clock (0 without telemetry);
	// the consumer stamps submit-to-complete latency against it.
	start int64
}

// Wait blocks until the whole submitted batch has completed and
// returns its per-op errors (nil when every op succeeded). It is safe
// to call from multiple goroutines; all of them observe the same
// result.
func (t *Ticket) Wait() []error {
	<-t.done
	if !t.failed.Load() {
		return nil
	}
	return t.errs
}

// Done returns a channel closed when the submitted batch has
// completed, for select-based waiters.
func (t *Ticket) Done() <-chan struct{} { return t.done }

// settle records op i's outcome; each index is settled exactly once.
// Distinct indexes may settle from distinct goroutines — the atomic
// pending counter orders every settle before the close of done, and
// Wait reads errs only after that close.
func (t *Ticket) settle(i int, err error) {
	if err != nil {
		t.errs[i] = err
		t.failed.Store(true)
	}
	if t.pending.Add(-1) == 0 {
		close(t.done)
	}
}

// Submit enqueues the batch on the async pipeline and returns
// immediately with a Ticket; WithAsync must have armed the pipeline.
// Each op is routed once against the current route table and pushed
// into its shard's bounded ring — when a ring is full, Submit blocks
// until the shard's consumer drains it (backpressure, not load
// shedding). Ops submitted by one goroutine execute on each shard in
// submission order; Submit itself may be called from any number of
// goroutines.
//
// After Close every op settles with ErrClosed; a Submit racing Close
// either completes normally or settles with ErrClosed as a whole — a
// batch is never torn across the shutdown.
func (s *ShardedReallocator) Submit(batch Batch) *Ticket {
	t := &Ticket{done: make(chan struct{})}
	if len(batch) == 0 {
		close(t.done)
		return t
	}
	t.errs = make([]error, len(batch))
	t.pending.Store(int32(len(batch)))
	if s.telReg != nil {
		t.start = telemetry.Now()
	}
	if s.rings == nil {
		for i := range batch {
			t.settle(i, ErrAsyncDisabled)
		}
		return t
	}
	// The read side of asyncMu covers the whole send loop: Close takes
	// the write side before closing the rings, so no send can race a
	// close. Blocking on a full ring while holding the read side is
	// safe — consumers never take asyncMu, so they keep draining.
	s.asyncMu.RLock()
	if s.asyncDown {
		s.asyncMu.RUnlock()
		for i := range batch {
			t.settle(i, ErrClosed)
		}
		return t
	}
	tbl := s.router.table.Load()
	for i, op := range batch {
		if op.Kind == OpInsert {
			if err := validateSize(op.Size); err != nil {
				t.settle(i, err)
				continue
			}
		} else if op.Kind != OpDelete {
			t.settle(i, errUnknownOpKind(op.Kind))
			continue
		}
		s.rings[s.router.routeIn(tbl, op.ID)] <- asyncReq{op: op, tk: t, idx: int32(i)}
	}
	s.asyncMu.RUnlock()
	return t
}

// consumeRing is shard si's consumer goroutine: block for one request,
// opportunistically drain the ring up to its depth, and execute the
// drained run as one group through the batched shard path — one lock
// acquisition, one mirror republish, one route republish, one
// telemetry stamp. It exits when Close closes the ring, after draining
// every request still queued.
func (s *ShardedReallocator) consumeRing(si int) {
	defer s.asyncWG.Done()
	ring := s.rings[si]
	reqs := make([]asyncReq, 0, s.asyncCap)
	sc := new(shardedApplyScratch) // private: consumers never contend on the pool
	for first := range ring {
		reqs = append(reqs[:0], first)
	drain:
		for len(reqs) < s.asyncCap {
			select {
			case rq, ok := <-ring:
				if !ok {
					break drain
				}
				reqs = append(reqs, rq)
			default:
				break drain
			}
		}
		s.executeAsyncGroup(si, reqs, sc)
	}
}

// executeAsyncGroup runs one drained run of requests against shard si.
// It mirrors applyShardGroup — ownership re-validated under the lock,
// group entry, one override-clear republish, one mirror publish — and
// then settles each request's ticket, stamping submit-to-complete
// latency from the ticket's submit time.
func (s *ShardedReallocator) executeAsyncGroup(si int, reqs []asyncReq, sc *shardedApplyScratch) {
	sh := s.shards[si]
	sh.mu.Lock()
	cur := s.router.table.Load()
	ops, idx := sc.ops[:0], sc.idx[:0] // idx: group position -> reqs position
	retry := sc.retry[:0]
	for k, rq := range reqs {
		if s.router.routeIn(cur, rq.op.ID) != si {
			retry = append(retry, int32(k))
			continue
		}
		ops = append(ops, toInternalOp(rq.op))
		idx = append(idx, int32(k))
	}
	if len(ops) > 0 {
		errs := growErrs(&sc.errs, len(ops))
		sh.inner.ApplyGroup(ops, errs)
		if cur.overrides != nil {
			clears := sc.clears[:0]
			for k, ri := range idx {
				if errs[k] == nil && reqs[ri].op.Kind == OpDelete {
					if _, ok := cur.overrides[reqs[ri].op.ID]; ok {
						clears = append(clears, reqs[ri].op.ID)
					}
				}
			}
			s.router.clearAll(clears)
			sc.clears = clears[:0]
		}
		sh.publish()
		var end int64
		if sh.tel != nil {
			end = telemetry.Now()
			sh.tel.BatchSize.Record(int64(len(ops)))
		}
		for k, ri := range idx {
			if sh.tel != nil {
				sh.tel.SubmitLatency.Record(end - reqs[ri].tk.start)
			}
			reqs[ri].tk.settle(int(reqs[ri].idx), errs[k])
			errs[k] = nil
		}
	}
	sh.mu.Unlock()
	// Requests rerouted by a migration between submit and execution run
	// through the per-op acquire path on their new owner; they are never
	// re-enqueued on another ring, so consumers cannot deadlock on each
	// other's backpressure.
	for _, ri := range retry {
		rq := reqs[ri]
		rq.tk.settle(int(rq.idx), s.applyOne(rq.op, rq.tk.start, true))
	}
	sc.ops, sc.idx, sc.retry = ops, idx, retry[:0]
	if s.inline {
		s.maybeStealRebalanceN(int64(len(reqs)))
	}
}

// closeAsync shuts the pipeline down: new Submits settle with
// ErrClosed, the rings close, and every already-queued request is
// drained and executed before the consumers exit — Close never drops
// accepted work.
func (s *ShardedReallocator) closeAsync() {
	if s.rings == nil {
		return
	}
	s.asyncMu.Lock()
	s.asyncDown = true
	s.asyncMu.Unlock()
	for _, ring := range s.rings {
		close(ring)
	}
	s.asyncWG.Wait()
}
