// dbstore: the database scenario that motivated the paper. A block store
// translates logical block names to physical disk extents through a
// checkpointed cost-oblivious reallocator, exactly like a block
// translation layer: blocks move to keep the disk footprint tight, moves
// update the in-memory map, checkpoints persist it, and space freed since
// the last checkpoint is never rewritten — which is what makes the final
// crash + recovery safe.
package main

import (
	"fmt"
	"log"
	"math/rand/v2"

	"realloc"
)

func main() {
	store, err := realloc.NewBlockStore(realloc.BlockStoreEpsilon(0.25))
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(42, 7))

	// Create a tree's worth of blocks (sizes in 4KiB units: compressed
	// B-tree nodes of 64KiB-1MiB, the TokuDB regime).
	fmt.Println("creating 500 blocks...")
	for i := 0; i < 500; i++ {
		name := fmt.Sprintf("node-%04d", i)
		if err := store.Reserve(name, 16+rng.Int64N(240)); err != nil {
			log.Fatal(err)
		}
	}
	report(store)

	// Update churn: nodes are rewritten at new compressed sizes; the
	// system checkpoints periodically.
	fmt.Println("\nrunning 5000 block updates with periodic checkpoints...")
	for op := 1; op <= 5000; op++ {
		name := fmt.Sprintf("node-%04d", rng.IntN(500))
		if err := store.Update(name, 16+rng.Int64N(240)); err != nil {
			log.Fatal(err)
		}
		if op%250 == 0 {
			store.Checkpoint()
		}
	}
	report(store)

	// Lookups always resolve through the translation layer.
	ext, ok := store.Lookup("node-0042")
	fmt.Printf("\nnode-0042 -> physical extent [%d,%d) ok=%v\n", ext.Start, ext.End(), ok)

	// Crash right after a checkpoint plus a few more updates: volatile
	// state is gone; recovery must rebuild from the durable map and find
	// every mapped block's data intact.
	store.Checkpoint()
	for op := 0; op < 37; op++ {
		name := fmt.Sprintf("node-%04d", rng.IntN(500))
		if err := store.Update(name, 16+rng.Int64N(240)); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("\nCRASH (losing the in-memory translation map)...")
	store.Crash()

	n, err := store.Recover()
	if err != nil {
		log.Fatalf("recovery failed: %v", err)
	}
	fmt.Printf("recovered %d blocks from the durable map; all data verified intact\n", n)
	report(store)
}

func report(s *realloc.BlockStore) {
	fmt.Printf("  blocks=%d V=%d footprint=%d (%.4f x V) checkpoints=%d\n",
		s.Len(), s.Volume(), s.Footprint(),
		float64(s.Footprint())/float64(s.Volume()), s.Checkpoints())
}
