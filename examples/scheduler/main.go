// scheduler: the paper's scheduling interpretation, 1|f(w) realloc|Cmax.
// An online planner keeps every job in a uniprocessor schedule whose
// makespan stays within (1+ε) of the total work. Rescheduling a length-w
// job costs f(w) for an unknown subadditive f — think re-provisioning a
// batch job in a cluster calendar — and the planner is competitive for
// every such f simultaneously.
package main

import (
	"fmt"
	"log"
	"math/rand/v2"

	"realloc"
)

func main() {
	s, err := realloc.NewScheduler(0.25)
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(3, 1))

	// A day of batch jobs arrives.
	fmt.Println("scheduling 12 batch jobs...")
	var next int64 = 1
	for ; next <= 12; next++ {
		if err := s.AddJob(next, 10+rng.Int64N(90)); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Print(s.Gantt(60))

	// Cancellations and arrivals churn the plan; the makespan bound holds
	// throughout.
	fmt.Println("\nchurning: 300 cancellations + arrivals...")
	live := []int64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}
	worst := 0.0
	for i := 0; i < 300; i++ {
		if len(live) > 0 && rng.IntN(2) == 0 {
			k := rng.IntN(len(live))
			if err := s.RemoveJob(live[k]); err != nil {
				log.Fatal(err)
			}
			live[k] = live[len(live)-1]
			live = live[:len(live)-1]
		} else {
			if err := s.AddJob(next, 5+rng.Int64N(120)); err != nil {
				log.Fatal(err)
			}
			live = append(live, next)
			next++
		}
		if w := s.TotalWork(); w > 0 {
			if r := float64(s.Makespan()) / float64(w); r > worst {
				worst = r
			}
		}
	}
	fmt.Printf("worst makespan/work ratio over the churn: %.4f (bound %.2f)\n", worst, 1.25)

	fmt.Println("\nfinal schedule:")
	fmt.Print(s.Gantt(60))
}
