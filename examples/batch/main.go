// Batch walkthrough: submit grouped requests through the batched and
// async surfaces. Apply runs a whole batch under one shard-lock
// acquisition per touched shard with per-op error reporting; WithAsync
// adds per-shard submission rings so producers enqueue batches and
// collect results later through a Ticket, decoupling request arrival
// from flush execution.
package main

import (
	"fmt"
	"log"

	"realloc"
)

func main() {
	s, err := realloc.NewSharded(
		realloc.WithShards(4),
		realloc.WithEpsilon(0.25),
		realloc.WithAsync(256),
	)
	if err != nil {
		log.Fatal(err)
	}

	// A mixed batch executes in submission order; nil means every op
	// succeeded. A batch is a sequence, not a transaction.
	batch := make(realloc.Batch, 0, 64)
	for id := int64(1); id <= 64; id++ {
		batch = append(batch, realloc.InsertOp(id, 16*id))
	}
	if errs := s.Apply(batch); errs != nil {
		log.Fatalf("seed batch failed: %v", errs)
	}
	fmt.Printf("after seed batch: %d objects, volume %d\n", s.Len(), s.Volume())

	// Per-op errors come back at submission indexes and one op's
	// failure never stops the rest: the duplicate insert below fails,
	// the delete and the fresh insert around it still run.
	errs := s.Apply(realloc.Batch{
		realloc.DeleteOp(1),
		realloc.InsertOp(2, 64), // duplicate: fails
		realloc.InsertOp(100, 64),
	})
	for i, err := range errs {
		if err != nil {
			fmt.Printf("op %d rejected: %v\n", i, err)
		}
	}
	fmt.Printf("after mixed batch: has(1)=%v has(100)=%v\n", s.Has(1), s.Has(100))

	// InsertBatch/DeleteBatch wrap Apply for homogeneous batches.
	if errs := s.DeleteBatch([]int64{2, 3, 4, 5}); errs != nil {
		log.Fatalf("delete batch failed: %v", errs)
	}

	// Submit enqueues on the async pipeline and returns a Ticket
	// immediately; Wait collects the per-op errors once the per-shard
	// consumers have executed the batch. One goroutine's submissions
	// execute on each shard in submission order, so these two batches
	// cannot reorder against each other on any shard they share.
	t1 := s.Submit(realloc.Batch{
		realloc.InsertOp(200, 1024),
		realloc.InsertOp(201, 2048),
	})
	t2 := s.Submit(realloc.Batch{realloc.DeleteOp(200)})
	if errs := t1.Wait(); errs != nil {
		log.Fatalf("async insert batch failed: %v", errs)
	}
	if errs := t2.Wait(); errs != nil {
		log.Fatalf("async delete batch failed: %v", errs)
	}
	fmt.Printf("after async batches: has(200)=%v has(201)=%v\n", s.Has(200), s.Has(201))

	// Close drains everything already accepted, then stops the
	// consumers; submissions after Close settle with ErrClosed.
	last := s.Submit(realloc.Batch{realloc.InsertOp(300, 8)})
	if err := s.Close(); err != nil {
		log.Fatal(err)
	}
	if errs := last.Wait(); errs == nil {
		fmt.Println("pre-close submission drained before shutdown")
	}
	fmt.Printf("final: %d objects, volume %d, footprint %d\n",
		s.Len(), s.Volume(), s.Footprint())
}
