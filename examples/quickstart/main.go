// Quickstart: the smallest useful program against the public API — insert
// and delete blocks, watch the reallocator keep the footprint within
// (1+ε)·V, and read the cost metrics it accumulated without ever being
// told a cost function.
package main

import (
	"fmt"
	"log"

	"realloc"
)

func main() {
	r, err := realloc.New(
		realloc.WithEpsilon(0.25),
		realloc.WithMetrics(),
	)
	if err != nil {
		log.Fatal(err)
	}

	// Allocate a mixed population of blocks.
	fmt.Println("inserting 1000 blocks of mixed sizes...")
	for id := int64(1); id <= 1000; id++ {
		size := int64(1 + (id*id)%200) // deterministic mixed sizes
		if err := r.Insert(id, size); err != nil {
			log.Fatal(err)
		}
	}
	report(r)

	// Free every third block: holes appear, the reallocator compacts as
	// needed to preserve the footprint bound.
	fmt.Println("\ndeleting every third block...")
	for id := int64(3); id <= 1000; id += 3 {
		if err := r.Delete(id); err != nil {
			log.Fatal(err)
		}
	}
	report(r)

	// Blocks have stable identities but mobile placements.
	ext, ok := r.Extent(1)
	fmt.Printf("\nblock 1 currently lives at [%d,%d) (ok=%v)\n", ext.Start, ext.End(), ok)

	// The same run, priced after the fact under every standard subadditive
	// cost function — the algorithm never saw any of them.
	if stats, ok := r.Stats(); ok {
		fmt.Println("\nreallocation cost / allocation cost, per cost model:")
		for name, ratio := range stats.CostRatios {
			fmt.Printf("  %-16s %.3f\n", name, ratio)
		}
		fmt.Printf("moves: %d, flushes: %d, worst footprint ratio: %.4f\n",
			stats.Moves, stats.Flushes, stats.MaxFootprintRatio)
	}
}

func report(r *realloc.Reallocator) {
	fmt.Printf("  live blocks: %d, volume V=%d, footprint=%d (%.4f x V, bound %.2f)\n",
		r.Len(), r.Volume(), r.Footprint(),
		float64(r.Footprint())/float64(r.Volume()), 1+r.Epsilon())
}
