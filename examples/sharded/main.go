// Sharded walkthrough: scale the reallocator across goroutines by hash
// partitioning. Eight workers hammer a ShardedReallocator concurrently;
// each shard is an independent cost-oblivious reallocator with its own
// lock and address space, so per-object operations on different shards
// never contend — and each shard keeps its own (1+ε)·V_shard footprint
// bound, which sums to the global (1+ε) guarantee.
package main

import (
	"fmt"
	"log"
	"sync"
	"sync/atomic"

	"realloc"
)

func main() {
	// Count move events per shard through the observer pipeline; with a
	// sharded reallocator the callback must be concurrency-safe because
	// shards emit events in parallel.
	const shards = 4
	var moves [shards]atomic.Int64
	s, err := realloc.NewSharded(
		realloc.WithShards(shards),
		realloc.WithEpsilon(0.25),
		realloc.WithMetrics(),
		realloc.WithObserver(func(e realloc.Event) {
			if e.Kind == realloc.EventMove {
				moves[e.Shard].Add(1)
			}
		}),
	)
	if err != nil {
		log.Fatal(err)
	}

	// Eight workers churn disjoint id ranges concurrently. Ids are
	// scrambled across shards by a hash, so every worker touches every
	// shard and the load spreads evenly.
	const workers = 8
	const perWorker = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			base := int64(w*perWorker + 1)
			for i := int64(0); i < perWorker; i++ {
				id := base + i
				if err := s.Insert(id, 1+id%100); err != nil {
					log.Fatal(err)
				}
				if i%2 == 1 { // delete half to force real churn
					if err := s.Delete(id - 1); err != nil {
						log.Fatal(err)
					}
				}
			}
		}()
	}
	wg.Wait()
	if err := s.Drain(); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%d shards, %d workers, %d ops applied concurrently\n",
		s.Shards(), workers, workers*perWorker*3/2)
	fmt.Printf("live objects: %d, total volume: %d\n", s.Len(), s.Volume())
	fmt.Printf("summed footprint: %d <= (1+ε)·V = %.0f\n\n",
		s.Footprint(), (1+s.Epsilon())*float64(s.Volume()))

	// Per-shard view: every shard independently honors the paper's
	// footprint bound on its own private address space.
	fmt.Println("shard  volume  footprint  footprint/volume  moves")
	for i := 0; i < s.Shards(); i++ {
		v, f := s.ShardVolume(i), s.ShardFootprint(i)
		ratio := 0.0
		if v > 0 {
			ratio = float64(f) / float64(v)
		}
		fmt.Printf("%5d  %6d  %9d  %16.3f  %5d\n", i, v, f, ratio, moves[i].Load())
	}

	// Aggregated metrics: counters sum over shards; cost ratios price
	// the combined reallocation trace against the combined allocations.
	if st, ok := s.Stats(); ok {
		fmt.Printf("\naggregate: %d inserts, %d deletes, %d moves, moved volume %d\n",
			st.Inserts, st.Deletes, st.Moves, st.MovedVolume)
		fmt.Printf("worst per-shard footprint ratio: %.3f\n", st.MaxFootprintRatio)
		fmt.Printf("linear cost ratio (moves/allocs, cost-oblivious): %.2f\n",
			st.CostRatios["linear"])
	}

	// Sanity: full structural validation of every shard.
	if err := s.CheckInvariants(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nall shard invariants hold")

	// Rebalancing: hash partitioning spreads *this* workload evenly, but
	// a skewed id population can pile most of the volume onto one shard.
	// WithRebalance routes ids through a reassignable id→shard table and
	// migrates objects off overloaded shards once max/mean volume passes
	// the threshold; here we force the skew by inserting onto whatever
	// shard id 1 lives on via MigrateShard's manual inverse — everything
	// lands on one shard, then one sweep levels it.
	r, err := realloc.NewSharded(
		realloc.WithShards(shards),
		realloc.WithEpsilon(0.25),
	)
	if err != nil {
		log.Fatal(err)
	}
	hot := 0
	for id := int64(1); id <= 3000; id++ {
		if err := r.Insert(id, 1+id%100); err != nil {
			log.Fatal(err)
		}
		if r.ShardOf(id) != hot {
			// Concentrate the volume: migrate strays onto shard 0.
			if _, err := r.MigrateShard(r.ShardOf(id), hot, 1<<30, 1); err != nil {
				log.Fatal(err)
			}
		}
	}
	before := r.ShardVolumes()
	// Manual sweeps (WithRebalance automates the trigger): each sweep
	// migrates bounded batches, so a heavy skew takes a few of them.
	total, sweeps := 0, 0
	for {
		moved, err := r.Rebalance()
		if err != nil {
			log.Fatal(err)
		}
		if moved == 0 {
			break
		}
		total += moved
		sweeps++
	}
	fmt.Printf("\nrebalancing: shard volumes %v\n  -> %d sweeps migrated %d objects -> %v\n",
		before, sweeps, total, r.ShardVolumes())
	fmt.Printf("rerouted ids (hash home != current shard): %d\n", r.RouteOverrides())
	if err := r.CheckInvariants(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("per-shard (1+ε) bounds survive migration")
}
