// defrag: cost-oblivious defragmentation (Theorem 2.7). A volume holds
// blocks scattered with holes and out of key order; the defragmenter
// physically sorts them using only (1+ε)·V + ∆ working space — the naïve
// approach needs 2·V — while moving each block only O((1/ε)·log(1/ε))
// times.
package main

import (
	"fmt"
	"log"
	"math/rand/v2"

	"realloc"
)

func main() {
	rng := rand.New(rand.NewPCG(9, 9))

	// A fragmented volume: 800 blocks in random key order with scattered
	// holes (10% slack — within the (1+eps)V input budget for eps=0.25).
	var blocks []realloc.Block
	var offset, volume int64
	perm := rng.Perm(800)
	for i, key := range perm {
		size := int64(1 + rng.Int64N(100))
		if i%7 == 0 {
			offset += rng.Int64N(20) // a hole
		}
		blocks = append(blocks, realloc.Block{ID: int64(key + 1), Size: size, Offset: offset})
		offset += size
		volume += size
	}
	fmt.Printf("input: %d blocks, V=%d, footprint=%d (%.3f x V), keys shuffled\n",
		len(blocks), volume, offset, float64(offset)/float64(volume))

	eps := 0.25
	stats, err := realloc.Defragment(blocks, func(a, b int64) bool { return a < b }, eps)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nsorted %d blocks by key:\n", stats.Objects)
	fmt.Printf("  space budget (1+eps)V+Delta = %d, peak footprint = %d (%.3f x V)\n",
		stats.SpaceBudget, stats.PeakFootprint, float64(stats.PeakFootprint)/float64(volume))
	fmt.Printf("  naive defragmentation would have needed 2V = %d\n", 2*volume)
	fmt.Printf("  moves: total=%d, per object mean=%.2f max=%d\n",
		stats.TotalMoves, stats.MeanMovesPerObject, stats.MaxMovesPerObject)

	// Show the final layout really is sorted and packed.
	fmt.Println("\nfirst blocks of the sorted layout:")
	for i, b := range stats.Layout {
		if i >= 8 {
			break
		}
		fmt.Printf("  key %4d at [%6d,%6d) size %d\n", b.ID, b.Offset, b.Offset+b.Size, b.Size)
	}
	for i := 1; i < len(stats.Layout); i++ {
		if stats.Layout[i].ID < stats.Layout[i-1].ID {
			log.Fatal("layout is not sorted!")
		}
	}
	fmt.Println("layout verified: ascending keys, contiguous placement")
}
