package realloc

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"realloc/internal/telemetry"
)

// blockPayload builds a distinctive byte pattern per name/size.
func blockPayload(name string, size int) []byte {
	p := make([]byte, size)
	for i := range p {
		p[i] = byte(len(name)*13 + i*11)
	}
	return p
}

// TestBlockStoreDurableRoundTrip exercises the public durable API over
// real files: create, fill, checkpoint, close, reopen, verify — then
// mutate and reopen again to prove the recovered store is a full peer
// of a fresh one.
func TestBlockStoreDurableRoundTrip(t *testing.T) {
	dir := t.TempDir()
	reg := telemetry.NewRegistry()
	s, err := NewBlockStore(BlockStoreDir(dir), BlockStoreTelemetry(reg))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string][]byte{}
	for i := 0; i < 25; i++ {
		name := fmt.Sprintf("page%03d", i)
		want[name] = blockPayload(name, 32+i*9)
		if err := s.Put(name, want[name]); err != nil {
			t.Fatal(err)
		}
	}
	s.Checkpoint()
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// The media is real: a WAL and one arena generation on disk.
	if _, err := os.Stat(filepath.Join(dir, "wal.log")); err != nil {
		t.Fatalf("wal file: %v", err)
	}
	if m, _ := filepath.Glob(filepath.Join(dir, "arena.*.img")); len(m) != 1 {
		t.Fatalf("arena generations on disk: %v", m)
	}

	s2, rep, err := OpenBlockStore(BlockStoreDir(dir), BlockStoreTelemetry(reg))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Recovered != len(want) {
		t.Fatalf("recovered %d of %d", rep.Recovered, len(want))
	}
	for name, data := range want {
		got, err := s2.Get(name)
		if err != nil {
			t.Fatalf("get %q: %v", name, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("payload %q diverged after reopen", name)
		}
	}
	if err := s2.CheckInvariants(); err != nil {
		t.Fatal(err)
	}

	// Mutate, checkpoint, reopen again.
	if err := s2.Drop("page000"); err != nil {
		t.Fatal(err)
	}
	if err := s2.Put("fresh", blockPayload("fresh", 48)); err != nil {
		t.Fatal(err)
	}
	s2.Checkpoint()
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	s3, rep, err := OpenBlockStore(BlockStoreDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Recovered != len(want) {
		t.Fatalf("second reopen recovered %d, want %d", rep.Recovered, len(want))
	}
	if _, ok := s3.Lookup("page000"); ok {
		t.Fatal("dropped block resurrected by recovery")
	}
	if got, err := s3.Get("fresh"); err != nil || !bytes.Equal(got, blockPayload("fresh", 48)) {
		t.Fatalf("post-recovery write lost: %v", err)
	}
	_ = s3.Close()

	// Durability telemetry flowed through the registry.
	snap := reg.Snapshot()
	if snap.WALFsync.Count == 0 {
		t.Fatal("WAL fsync latencies not recorded")
	}
	if snap.Recovery.Count == 0 {
		t.Fatal("recovery durations not recorded")
	}
}

// TestBlockStoreDurableCrashRecover drives the public Crash/Recover
// cycle in durable mode: uncheckpointed work is lost, checkpointed
// work survives with intact bytes.
func TestBlockStoreDurableCrashRecover(t *testing.T) {
	dir := t.TempDir()
	s, err := NewBlockStore(BlockStoreDir(dir), BlockStoreDeamortized())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Put("kept", blockPayload("kept", 64)); err != nil {
		t.Fatal(err)
	}
	s.Checkpoint()
	s.Crash()
	n, err := s.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("recovered %d blocks, want 1", n)
	}
	if got, err := s.Get("kept"); err != nil || !bytes.Equal(got, blockPayload("kept", 64)) {
		t.Fatalf("checkpointed block after recovery: %v", err)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestOpenBlockStoreEmptyDir proves opening never-used media yields a
// working empty store rather than an error.
func TestOpenBlockStoreEmptyDir(t *testing.T) {
	s, rep, err := OpenBlockStore(BlockStoreDir(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if rep.Recovered != 0 {
		t.Fatalf("recovered %d from nothing", rep.Recovered)
	}
	if err := s.Put("a", blockPayload("a", 16)); err != nil {
		t.Fatal(err)
	}
}
