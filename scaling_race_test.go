package realloc_test

import (
	"sync"
	"sync/atomic"
	"testing"

	"realloc"
)

// TestShardedRouteConsistencyUnderMigration is the correctness stress
// for the lock-free routing fast path, meaningful under -race: a set of
// probe objects that are never deleted is hammered by concurrent Extent
// and Has readers while churn writers drive inline-rebalance migrations,
// a migration storm forces route-table republishes directly, and Close
// lands mid-flight. Every read must observe a route-consistent owner —
// a probe is never lost (reader finds it regardless of which shard
// currently owns it) — and after quiescing, every probe is owned by
// exactly one shard (ForEach sees it exactly once) and the route table
// has no leaked overrides for deleted ids.
func TestShardedRouteConsistencyUnderMigration(t *testing.T) {
	const shards = 4
	const probes = 64
	s, err := realloc.NewSharded(
		realloc.WithShards(shards),
		realloc.WithEpsilon(0.25),
		realloc.WithRebalance(realloc.RebalancePolicy{
			Mode:         realloc.RebalanceInline,
			Threshold:    1.2,
			CheckEvery:   16,
			BatchObjects: 32,
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	probeSize := map[int64]int64{}
	for id := int64(1); id <= probes; id++ {
		size := 1 + id%48
		if err := s.Insert(id, size); err != nil {
			t.Fatal(err)
		}
		probeSize[id] = size
	}

	var stop atomic.Bool
	var readers, writers sync.WaitGroup

	// Readers: every probe must always be found, with its exact size,
	// no matter how many times its route is republished underneath.
	// They run until the writers and the migration storm have finished.
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for !stop.Load() {
				for id := int64(1); id <= probes; id++ {
					if !s.Has(id) {
						t.Errorf("probe %d lost: Has = false", id)
						stop.Store(true)
						return
					}
					ext, ok := s.Extent(id)
					if !ok || ext.Size != probeSize[id] {
						t.Errorf("probe %d extent ok=%v size=%d, want size %d", id, ok, ext.Size, probeSize[id])
						stop.Store(true)
						return
					}
				}
			}
		}()
	}

	// Churn writers: volume swings on disjoint id ranges trip the
	// inline skew trigger, so migrations interleave with the reads.
	for w := 0; w < 2; w++ {
		w := w
		writers.Add(1)
		go func() {
			defer writers.Done()
			base := int64(1000 * (w + 1))
			for i := 0; i < 600 && !stop.Load(); i++ {
				id := base + int64(i%40)
				if s.Has(id) {
					if err := s.Delete(id); err != nil {
						t.Errorf("churn delete %d: %v", id, err)
						return
					}
				} else if err := s.Insert(id, 64+int64(w*113)); err != nil {
					t.Errorf("churn insert %d: %v", id, err)
					return
				}
			}
		}()
	}

	// Migration storm: force cross-shard batches (and hence route-table
	// republishes) directly, beyond what the skew trigger produces.
	writers.Add(1)
	go func() {
		defer writers.Done()
		for i := 0; i < 300 && !stop.Load(); i++ {
			if _, err := s.MigrateShard(i%shards, (i+1)%shards, 512, 8); err != nil {
				t.Errorf("migrate storm: %v", err)
				return
			}
		}
		// Close mid-flight: readers and writers are still running. For
		// an inline policy Close only reports the sticky sweep error,
		// and it must be safe under full concurrency.
		if err := s.Close(); err != nil {
			t.Errorf("concurrent close: %v", err)
		}
	}()

	writers.Wait()
	stop.Store(true)
	readers.Wait()
	if t.Failed() {
		return
	}

	if err := s.Drain(); err != nil {
		t.Fatal(err)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}

	// Exactly-one-owner: quiesced, every probe appears exactly once
	// across all shards, with its original size.
	seen := map[int64]int{}
	s.ForEach(func(id int64, ext realloc.Extent) {
		if id <= probes {
			seen[id]++
			if ext.Size != probeSize[id] {
				t.Errorf("probe %d size %d after migrations, want %d", id, ext.Size, probeSize[id])
			}
		}
	})
	for id := int64(1); id <= probes; id++ {
		if seen[id] != 1 {
			t.Errorf("probe %d owned by %d shards, want exactly 1", id, seen[id])
		}
	}

	// No leaked overrides: every override must belong to a live id.
	if n := s.RouteOverrides(); n > s.Len() {
		t.Fatalf("%d route overrides exceed %d live objects", n, s.Len())
	}
}

// TestShardedAggregateReadsDuringMutation drives the lock-free aggregate
// reads (Volume, Footprint, Len, Snapshot, ShardVolumes, Stats) from
// concurrent goroutines while writers mutate every shard — the paths
// that previously took every shard lock and now take none. Run with
// -race; the assertions check per-shard snapshot consistency (totals
// always equal the sum of the returned per-shard terms).
func TestShardedAggregateReadsDuringMutation(t *testing.T) {
	s, err := realloc.NewSharded(
		realloc.WithShards(4), realloc.WithEpsilon(0.25), realloc.WithMetrics(),
	)
	if err != nil {
		t.Fatal(err)
	}
	var stop atomic.Bool
	var wg sync.WaitGroup
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var snap realloc.Snapshot
			var st realloc.Stats
			vols := make([]int64, 0, 4)
			for !stop.Load() {
				s.ReadSnapshot(&snap)
				var lenSum int
				var volSum, footSum int64
				for _, ss := range snap.Shards {
					lenSum += ss.Len
					volSum += ss.Volume
					footSum += ss.Footprint
				}
				if lenSum != snap.Len || volSum != snap.Volume || footSum != snap.Footprint {
					t.Error("snapshot totals diverge from per-shard terms")
					stop.Store(true)
					return
				}
				if v := s.Volume(); v < 0 {
					t.Errorf("negative volume %d", v)
					stop.Store(true)
					return
				}
				_ = s.Footprint()
				_ = s.Len()
				_ = s.Delta()
				_ = s.Flushes()
				_ = s.FlushActive()
				vols = s.AppendShardVolumes(vols[:0])
				if len(vols) != 4 {
					t.Errorf("AppendShardVolumes returned %d entries", len(vols))
					stop.Store(true)
					return
				}
				if !s.ReadStats(&st) {
					t.Error("ReadStats reported metrics disabled")
					stop.Store(true)
					return
				}
			}
		}()
	}
	for w := 0; w < 2; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			base := int64((w + 1) << 20)
			for i := int64(0); i < 2000; i++ {
				id := base + i
				if err := s.Insert(id, 1+i%32); err != nil {
					t.Errorf("insert %d: %v", id, err)
					break
				}
				if i%2 == 1 {
					if err := s.Delete(id - 1); err != nil {
						t.Errorf("delete %d: %v", id-1, err)
						break
					}
				}
			}
			stop.Store(true)
		}()
	}
	wg.Wait()
	if err := s.Drain(); err != nil {
		t.Fatal(err)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
