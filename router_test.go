package realloc

import (
	"sync"
	"testing"
	"time"

	"realloc/internal/shardhash"
)

// TestRouteIsMutexFree is the structural guarantee behind the lock-free
// hot path: route(), overrideCount(), and ShardOf must complete while the
// router's only mutex — the copy-on-write writer lock — is held by
// someone else. Under the old RWMutex design this deadlocked; now reads
// touch nothing but the published table pointer.
func TestRouteIsMutexFree(t *testing.T) {
	rt := newRouter(8)
	var id int64
	for id = 1; shardhash.Home(id, 8) == 5; id++ {
	}
	rt.setAll([]int64{id}, 5)

	rt.writeMu.Lock()
	defer rt.writeMu.Unlock()

	done := make(chan [2]int, 1)
	go func() {
		var got [2]int
		got[0] = rt.route(id)
		got[1] = rt.overrideCount()
		done <- got
	}()
	select {
	case got := <-done:
		if got[0] != 5 {
			t.Fatalf("route(%d) = %d while writer lock held, want override 5", id, got[0])
		}
		if got[1] == 0 {
			t.Fatal("overrideCount() = 0, want > 0")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("route() blocked on the router writer mutex — the read path is not lock-free")
	}
}

// TestRouterCopyOnWrite checks the table-publishing semantics: published
// tables are never mutated (a held snapshot stays valid), overrides
// routing home are dropped rather than stored, and the empty state is
// the nil-map fast path.
func TestRouterCopyOnWrite(t *testing.T) {
	rt := newRouter(4)
	if rt.table.Load().overrides != nil {
		t.Fatal("fresh router should publish the nil-overrides fast-path table")
	}

	var id int64
	for id = 1; shardhash.Home(id, 4) == 2; id++ {
	}
	snap := rt.table.Load()
	rt.setAll([]int64{id}, 2)
	if got := rt.route(id); got != 2 {
		t.Fatalf("route(%d) = %d after override, want 2", id, got)
	}
	if got := rt.routeIn(snap, id); got != shardhash.Home(id, 4) {
		t.Fatalf("held snapshot mutated: routeIn = %d, want hash home %d", got, shardhash.Home(id, 4))
	}
	if rt.table.Load() == snap {
		t.Fatal("override published without a new table pointer")
	}

	// Rerouting back to the hash home must drop the override entirely.
	rt.setAll([]int64{id}, shardhash.Home(id, 4))
	if n := rt.overrideCount(); n != 0 {
		t.Fatalf("overrideCount = %d after rerouting home, want 0", n)
	}
	if rt.table.Load().overrides != nil {
		t.Fatal("empty override table should republish the nil-map fast path")
	}

	// clear on a table with no overrides must not publish at all.
	before := rt.table.Load()
	rt.clear(id)
	if rt.table.Load() != before {
		t.Fatal("clear of an absent override republished the table")
	}

	rt.setAll([]int64{id}, 2)
	rt.clear(id)
	if got, want := rt.route(id), shardhash.Home(id, 4); got != want {
		t.Fatalf("route(%d) = %d after clear, want hash home %d", id, got, want)
	}
}

// TestRouterConcurrentReadersAndWriters hammers lock-free readers
// against copy-on-write publishers; meaningful under -race, and asserts
// every read resolves to either the override or the hash home (never a
// torn or stale-beyond-one-publish value outside those two).
func TestRouterConcurrentReadersAndWriters(t *testing.T) {
	rt := newRouter(8)
	const ids = 128
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for id := int64(1); id <= ids; id++ {
					got := rt.route(id)
					if got != 3 && got != shardhash.Home(id, 8) {
						t.Errorf("route(%d) = %d, want override 3 or home %d", id, got, shardhash.Home(id, 8))
						return
					}
				}
			}
		}()
	}
	batch := make([]int64, 0, ids)
	for id := int64(1); id <= ids; id++ {
		batch = append(batch, id)
	}
	for i := 0; i < 200; i++ {
		rt.setAll(batch, 3)
		for _, id := range batch {
			rt.clear(id)
		}
	}
	close(stop)
	wg.Wait()
}

// TestSkewCheckAllocationFree pins the inline-rebalance trigger's hot
// path: a skew check against the mirrored volumes must not allocate.
func TestSkewCheckAllocationFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation perturbs allocation counts")
	}
	s, err := NewSharded(WithShards(4), WithEpsilon(0.25))
	if err != nil {
		t.Fatal(err)
	}
	for id := int64(1); id <= 256; id++ {
		if err := s.Insert(id, 1+id%32); err != nil {
			t.Fatal(err)
		}
	}
	s.skewedNow() // warm the pool
	if n := testing.AllocsPerRun(100, func() { s.skewedNow() }); n != 0 {
		t.Fatalf("skewedNow allocates %.1f per run, want 0", n)
	}
}

// TestAggregateReadsAllocationFree pins the monitoring hot loop: every
// lock-free aggregate read, and the Append/Read reuse forms, must not
// allocate once their destination buffers exist.
func TestAggregateReadsAllocationFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation perturbs allocation counts")
	}
	s, err := NewSharded(WithShards(8), WithEpsilon(0.25), WithMetrics())
	if err != nil {
		t.Fatal(err)
	}
	for id := int64(1); id <= 512; id++ {
		if err := s.Insert(id, 1+id%32); err != nil {
			t.Fatal(err)
		}
	}
	vols := make([]int64, 0, s.Shards())
	var snap Snapshot
	var st Stats
	// Warm destination buffers and internal pools once.
	vols = s.AppendShardVolumes(vols[:0])
	s.ReadSnapshot(&snap)
	s.ReadStats(&st)

	checks := []struct {
		name string
		fn   func()
	}{
		{"Volume", func() { _ = s.Volume() }},
		{"Footprint", func() { _ = s.Footprint() }},
		{"Len", func() { _ = s.Len() }},
		{"Delta", func() { _ = s.Delta() }},
		{"Flushes", func() { _ = s.Flushes() }},
		{"FlushActive", func() { _ = s.FlushActive() }},
		{"ShardVolume", func() { _ = s.ShardVolume(0) }},
		{"ShardFootprint", func() { _ = s.ShardFootprint(0) }},
		{"ShardOf", func() { _ = s.ShardOf(77) }},
		{"Has", func() { _ = s.Has(77) }},
		{"Extent", func() { _, _ = s.Extent(77) }},
		{"AppendShardVolumes", func() { vols = s.AppendShardVolumes(vols[:0]) }},
		{"ReadSnapshot", func() { s.ReadSnapshot(&snap) }},
		{"ReadStats", func() { _ = s.ReadStats(&st) }},
	}
	for _, c := range checks {
		if n := testing.AllocsPerRun(100, c.fn); n != 0 {
			t.Errorf("%s allocates %.1f per call, want 0", c.name, n)
		}
	}
}
